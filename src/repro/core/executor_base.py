"""Shared iteration driver for the simulated Level 1/2/3 executors.

Each executor implements one Lloyd iteration under its partition plan —
performing the real arithmetic with NumPy *and* charging the modelled cost
of every phase (DMA, compute, register comm, MPI) to a
:class:`~repro.runtime.ledger.TimeLedger`.  The base class owns everything
that is identical across levels: the convergence loop, telemetry, result
assembly, and the paper's stop rule ("until each c_j is fixed", tol = 0).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    ConfigurationError,
    ConvergenceWarning,
    FaultError,
    IntegrityError,
    NumericalFaultError,
)
from ..machine.machine import DegradedMachine, Machine
from ..runtime.compute import ComputeModel
from ..runtime.engine import EngineLike, resolve_engine
from ..runtime.faults import FaultInjector, resolve_fault_plan
from ..runtime.reduce import (
    ReduceLike,
    ReduceTopology,
    resolve_reduce,
    scatter_bounds,
)
from ..runtime.ledger import NullLedger, TimeLedger
from ..runtime.supervisor import SupervisorLike, resolve_supervisor
from ._common import (
    EMPTY_ACTIONS,
    inertia,
    max_centroid_shift,
    update_centroids,
    validate_data,
)
from .block_tasks import build_pruned_tasks, pruned_assign_block
from .bounds import BlockBounds
from .checkpoint import CheckpointConfig, CheckpointStore, load_checkpoint
from .kernels import KernelLike, resolve_kernel
from .recovery import RecoveryLike, resolve_recovery
from .result import IterationStats, KMeansResult


class LevelExecutor(ABC):
    """Template for a partition-level k-means executor.

    Parameters
    ----------
    machine:
        The simulated machine the plan was made for.
    collective_algorithm:
        Algorithm used by inter-CG collectives ("ring", "tree",
        "recursive-doubling").
    strict_cpe:
        When True, the executor computes per-CPE partial results explicitly
        and combines them exactly the way the hardware reduction would —
        slower, used by fidelity tests.  When False it uses the numerically
        equivalent vectorised form.
    overlap_dma:
        Model double-buffered DMA: the sample-stream transfer overlaps the
        distance computation, so the streaming phase is charged
        ``max(dma, compute)`` instead of their sum — the standard Sunway
        optimisation, ablated in ``benchmarks/bench_ablations.py``.
    compute_efficiency:
        Sustained fraction of peak FLOP/s assumed for the distance kernel.
    kernel:
        Compute backend for the fast-path Assign arithmetic ("naive",
        "gemm", "pruned", or a :class:`~repro.core.kernels.KernelBackend`
        instance).  None (the default) consults the ``REPRO_KERNEL``
        environment variable, falling back to "naive".  Strict-CPE mode
        requires the naive backend: its per-slice dataflow *is* the
        direct-form arithmetic — an explicit non-naive kernel raises,
        while an environment-sourced one is silently pinned back to
        naive (the knob is a machine-wide default, not a per-run demand).
    model_costs:
        When False the executor runs pure numerics against a
        :class:`~repro.runtime.ledger.NullLedger` — no phase is priced, no
        byte/flop accounting happens, and the result carries no ledger.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` (or compact spec
        string, see :func:`~repro.runtime.faults.parse_fault_plan`) to
        inject during the run.  Requires ``model_costs=True`` — the fault
        hooks live on the cost-charging paths.  None (the default) attaches
        no injector: the run is bit-identical, in centroids and modelled
        seconds, to one without fault support.
    recovery:
        Policy applied when an injected fault fires: ``"retry"``,
        ``"replan"``, ``"fail_fast"`` (default), or a
        :class:`~repro.core.recovery.RecoveryPolicy` instance.
    checkpoint_every:
        Snapshot ``(iteration, centroids)`` every this many iterations,
        charging the modelled I/O to the ``checkpoint`` category.  None
        (default) disables periodic snapshots; the free epoch-0 snapshot of
        the initial centroids is always kept.
    checkpoint_config:
        Full :class:`~repro.core.checkpoint.CheckpointConfig` overriding
        ``checkpoint_every`` (cadence plus I/O bandwidth/latency).
    checkpoint_dir:
        Directory for *durable* snapshots: every checkpoint is also
        persisted to ``checkpoint_dir/checkpoint.npz`` via an atomic
        write-tmp → fsync → rename, so a killed process can ``resume``
        from disk.  Modelled cost charging is unchanged — host I/O is
        real time, not simulated Sunway time.
    resume:
        Restart from the snapshot in ``checkpoint_dir`` (required) instead
        of the passed initial centroids.  The continuation is bit-identical
        to the uninterrupted run: assignments are a pure function of
        ``(X, C)``, so ``(iteration, centroids)`` is complete restart
        state.  An empty directory falls back to a cold start.
    deadline_s:
        Wall-clock budget in *real* seconds; the run aborts with
        :class:`~repro.errors.DeadlineExceededError` at the first
        iteration boundary past it.  None consults ``REPRO_DEADLINE``.
    watchdog_s:
        Per-iteration real-time threshold; slower iterations are flagged
        as ``slow_iteration`` host events (never killed).
    supervisor:
        Full :class:`~repro.runtime.supervisor.RunSupervisor` instance
        overriding ``deadline_s``/``watchdog_s``.
    empty_action:
        Empty-cluster rule for the Update step: ``"keep"`` (default,
        historical) or ``"reseed_farthest"`` (deterministic farthest-point
        re-seeding; see :func:`~repro.core._common.update_centroids`).
    engine:
        Host execution engine for the per-sample-block numerics
        (``"serial"``, ``"thread"``, or an
        :class:`~repro.runtime.engine.ExecutionEngine` instance).  None
        consults the ``REPRO_ENGINE`` environment variable.  Engines only
        change host scheduling: per-shard ``(sums, counts)`` partials merge
        in fixed block order, so centroids, assignments, modelled ledger
        seconds, and fault replays are bit-identical across engines.
    workers:
        Thread count for the thread engine (``workers > 1`` alone implies
        ``engine="thread"``); None uses ``os.cpu_count()``.
    reduce:
        Reduction topology merging the per-block ``(sums, counts)``
        partials (``"serial"``, ``"tree"``, or a
        :class:`~repro.runtime.reduce.ReduceTopology` instance).  None
        consults ``REPRO_REDUCE``.  The merge schedule is a pure function
        of the block count (never of thread timing), so for a fixed
        topology the results are bit-identical across engines and worker
        counts; the serial default reproduces the historical in-order
        fold exactly.  Executors with a hierarchical merge (Level 1/2)
        lift the topology with
        :meth:`~repro.runtime.reduce.ReduceTopology.for_groups` so the
        within-CG stage and the cross-CG stage keep their shape.
    integrity:
        Data-integrity mode for every host data plane (``"off"``,
        ``"verify"``, or ``"repair"``; see
        :mod:`repro.runtime.integrity`).  None consults
        ``REPRO_INTEGRITY``, falling back to ``"off"``.  ``verify`` seals
        every reduction partial with ABFT checksums, re-verifies shared
        arrays before dispatch, and checks the checkpoint manifest on
        resume — silent corruption raises
        :class:`~repro.errors.IntegrityError` instead of propagating wrong
        numbers.  ``repair`` additionally recomputes the smallest corrupted
        unit (and cold-starts past an unreadable snapshot), so runs under
        bitflip chaos finish bit-identical to fault-free ones.
    """

    #: Partition level implemented by the subclass (1, 2 or 3).
    level: int = 0

    def __init__(self, machine: Machine, collective_algorithm: str = "ring",
                 strict_cpe: bool = False, overlap_dma: bool = False,
                 compute_efficiency: float | None = None,
                 kernel: Optional[KernelLike] = None,
                 model_costs: bool = True,
                 faults=None,
                 recovery: RecoveryLike = "fail_fast",
                 checkpoint_every: Optional[int] = None,
                 checkpoint_config: Optional[CheckpointConfig] = None,
                 checkpoint_dir: Optional[str] = None,
                 resume: bool = False,
                 deadline_s: Optional[float] = None,
                 watchdog_s: Optional[float] = None,
                 supervisor: SupervisorLike = None,
                 empty_action: str = "keep",
                 engine: EngineLike = None,
                 workers: Optional[int] = None,
                 reduce: ReduceLike = None,
                 integrity: Optional[str] = None) -> None:
        self.machine = machine
        self.collective_algorithm = collective_algorithm
        self.strict_cpe = bool(strict_cpe)
        self.overlap_dma = bool(overlap_dma)
        self.engine = resolve_engine(engine, workers, integrity=integrity)
        #: Resolved integrity mode ("off"/"verify"/"repair"), shared with
        #: the engine and the checkpoint store so all three data planes —
        #: partials, shared arrays, durable snapshots — verify consistently.
        self.integrity = self.engine.integrity
        self.reduce = resolve_reduce(reduce)
        #: Per-iteration inertia under the incoming centroids, stashed by
        #: iterate() when the fused kernel already produced the winning
        #: distances; None makes run() fall back to an explicit pass.
        self._iter_inertia: Optional[float] = None
        env_default = kernel is None
        self.kernel = resolve_kernel(kernel)
        if self.strict_cpe and self.kernel.name != "naive":
            if env_default:
                # The environment knob is a machine-wide default; a
                # fidelity run pins the backend its dataflow *is* rather
                # than erroring on an ambient REPRO_KERNEL.
                self.kernel = resolve_kernel("naive")
            else:
                raise ConfigurationError(
                    f"strict_cpe fidelity mode requires the naive kernel "
                    f"(the hardware dataflow is the direct form); "
                    f"got kernel={self.kernel.name!r}"
                )
        #: Carried per-sample bound state of the pruned kernel path (always
        #: constructed; permanently invalid under the other backends).
        self._pruned_bounds = BlockBounds()
        #: Actual distance evaluations per iteration under kernel="pruned"
        #: (n*k on establishment sweeps; the pruning telemetry the bench
        #: harness reads).
        self.pruned_evals_per_iteration: List[int] = []
        self.model_costs = bool(model_costs)
        self.ledger = TimeLedger() if self.model_costs else NullLedger()
        plan = resolve_fault_plan(faults)
        if plan and not self.model_costs:
            raise ConfigurationError(
                "fault injection requires model_costs=True: the fault "
                "hooks fire from the cost-charging paths that "
                "model_costs=False skips entirely"
            )
        self.injector: Optional[FaultInjector] = \
            FaultInjector(plan) if plan else None
        self.recovery = resolve_recovery(recovery)
        if checkpoint_config is None:
            checkpoint_config = CheckpointConfig(every=checkpoint_every)
        if resume and checkpoint_dir is None:
            raise ConfigurationError(
                "resume=True needs checkpoint_dir= (there is no on-disk "
                "snapshot to resume from otherwise)"
            )
        self.resume = bool(resume)
        self.supervisor = resolve_supervisor(supervisor, deadline_s,
                                             watchdog_s)
        # The store shares the engine's chaos injector (so
        # bitflip_checkpoint plans reach the durable writes) and the
        # supervisor's event log; built after the supervisor for exactly
        # that reason.
        self.checkpoints = CheckpointStore(checkpoint_config, self.ledger,
                                           directory=checkpoint_dir,
                                           chaos=self.engine.chaos,
                                           integrity=self.integrity,
                                           record=self.supervisor.record)
        if empty_action not in EMPTY_ACTIONS:
            raise ConfigurationError(
                f"empty_action must be one of {EMPTY_ACTIONS}, "
                f"got {empty_action!r}"
            )
        self.empty_action = empty_action
        kwargs = {}
        if compute_efficiency is not None:
            kwargs["efficiency"] = compute_efficiency
        self.compute = ComputeModel(machine.spec.processor.cg, self.ledger,
                                    **kwargs)

    # -- subclass interface ------------------------------------------------------

    @abstractmethod
    def setup(self, X: np.ndarray, C: np.ndarray) -> None:
        """Validate the plan against (X, C) and charge one-time load costs."""

    @abstractmethod
    def iterate(self, X: np.ndarray, C: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        """One Assign+Update under the plan; returns (assignments, new_C).

        Implementations must charge every phase of the iteration to
        ``self.ledger`` before returning.
        """

    def charge_stream_phases(self, prefix: str,
                             dma_times: Sequence[float],
                             compute_times: Sequence[float]) -> None:
        """Charge the sample-stream DMA and distance compute phases.

        Without overlap the phases serialise (charge both); with
        double-buffered DMA the slower one hides the other, so only
        ``max`` is charged (to its own category, the hidden phase at 0).
        """
        dma_worst = max(dma_times)
        compute_worst = max(compute_times)
        if not self.overlap_dma:
            self.ledger.charge("dma", f"{prefix}.stream", dma_worst)
            self.ledger.charge("compute", f"{prefix}.distances",
                               compute_worst)
            return
        if dma_worst >= compute_worst:
            self.ledger.charge("dma", f"{prefix}.stream+compute(overlap)",
                               dma_worst)
            self.ledger.charge("compute", f"{prefix}.distances(hidden)",
                               0.0)
        else:
            self.ledger.charge("dma", f"{prefix}.stream(hidden)", 0.0)
            self.ledger.charge("compute",
                               f"{prefix}.compute+stream(overlap)",
                               compute_worst)

    def update_step(self, sums: np.ndarray, counts: np.ndarray,
                    C: np.ndarray, X: Optional[np.ndarray] = None,
                    best_d2: Optional[np.ndarray] = None) -> np.ndarray:
        """The shared Update step under this executor's empty-cluster rule.

        Subclass ``iterate`` implementations call this instead of
        :func:`~repro.core._common.update_centroids` directly so the
        configured ``empty_action`` applies uniformly across levels.
        """
        return update_centroids(sums, counts, C,
                                empty_action=self.empty_action,
                                X=X, best_d2=best_d2)

    def _check_finite(self, new_C: np.ndarray, iteration: int) -> None:
        """Per-iteration numerical guard.

        A NaN/Inf in the fresh centroids (or in the fused pass's inertia)
        means a partial was corrupted — e.g. host-side bit rot injected at
        the engine seam — and every subsequent iteration would silently
        converge to garbage.  Raise a transient
        :class:`~repro.errors.NumericalFaultError` instead so the recovery
        policy can re-run the iteration (``retry``) or roll back to the
        last checkpoint (``replan``).
        """
        if not np.isfinite(new_C).all():
            raise NumericalFaultError(
                f"non-finite centroids after the iteration {iteration} "
                f"Update step", iteration=iteration,
            )
        if self._iter_inertia is not None \
                and not np.isfinite(self._iter_inertia):
            raise NumericalFaultError(
                f"non-finite inertia at iteration {iteration}",
                iteration=iteration,
            )

    # -- pruned kernel plumbing ----------------------------------------------------

    def _pruned_map_reduce(self, X: np.ndarray, C: np.ndarray,
                           blocks: Sequence[Tuple[int, int]],
                           topology: Optional[ReduceTopology] = None):
        """Map/reduce one pruned iteration over the plan's sample blocks.

        Same block boundaries and reduction topology as the unpruned
        path — the task-id stream, and with it every chaos plan and
        fault replay, is unchanged.  Returns ``(merged, partials)``; the
        partials carry per-block labels, exact winning distances, fresh
        lower bounds, and the actual distance-evaluation counts.
        """
        tasks = build_pruned_tasks(self.engine, self.kernel, X, C, blocks,
                                   self._pruned_bounds)
        return self.engine.map_reduce(
            pruned_assign_block, tasks,
            topology=self.reduce if topology is None else topology,
            return_partials=True)

    def _commit_pruned_state(self, C: np.ndarray, assignments: np.ndarray,
                             best_d2: np.ndarray,
                             partials: Sequence) -> None:
        """Adopt one pruned iteration's outputs as the carried bound state.

        Must be the *last* act of ``iterate()`` — after every fault-prone
        charge — so an iteration that faults mid-flight never half-commits:
        the retry re-runs against the previous iteration's (still sound)
        state, and replans/rollbacks invalidate via
        :meth:`_reset_state_after_replan`.
        """
        lb = np.empty(assignments.shape[0], dtype=np.float64)
        scatter_bounds(partials, lb)
        self._pruned_bounds.commit(C, assignments, best_d2, lb)
        self.pruned_evals_per_iteration.append(
            sum(int(p.n_dist) for p in partials))

    # -- fault handling ------------------------------------------------------------

    def _reset_state_after_replan(self) -> None:
        """Drop any executor state tied to the old partition plan.

        The base class invalidates the pruned kernel's carried bound
        state: a restored checkpoint (replan and rollback both restore
        one) rewinds the centroids, so bounds anchored to the poisoned
        trajectory would be unsound — the next iteration re-establishes
        them from scratch.  Subclasses with additional persistent
        acceleration state (e.g. the Hamerly bounds of Level3Bounded)
        override this — and must call ``super()`` — to invalidate theirs
        too.
        """
        self._pruned_bounds.invalidate()

    def _replan_after_failure(self, exc: FaultError,
                              X: np.ndarray) -> np.ndarray:
        """Excise the failed CG, re-plan on the survivors, restore state.

        Fault-spec CG indices are in the *base* machine's physical
        numbering, so repeated failures accumulate against the original
        machine.  Returns the centroids to resume from (the last
        checkpoint — the free epoch-0 snapshot at worst).
        """
        base = self.machine
        failed: List[int] = []
        if isinstance(base, DegradedMachine):
            failed = list(base.failed_cgs)
            base = base.base
        failed.append(exc.cg_index if exc.cg_index is not None else 0)
        self.machine = DegradedMachine(base, failed)
        checkpoint = self.checkpoints.restore()  # charges "recovery" I/O
        C = np.array(checkpoint.centroids, copy=True)
        self._plan = None  # force a fresh partition plan on the survivors
        self._reset_state_after_replan()
        self.setup(X, C)
        return C

    def _handle_fault(self, exc: FaultError, attempt: int, X: np.ndarray,
                      C: np.ndarray) -> np.ndarray:
        """Apply the recovery policy to one caught fault.

        Returns the centroids the iteration should re-run from (unchanged
        for a retry, the restored checkpoint for a replan); re-raises the
        fault when the policy gives up.
        """
        action = self.recovery.decide(exc, attempt)
        event = getattr(exc, "event", None)
        if action.kind == "retry":
            if action.delay > 0:
                self.ledger.charge("recovery", "recovery.retry_backoff",
                                   action.delay)
            if event is not None:
                event.action = "retried"
                event.recovery_seconds += action.delay
            return C
        if action.kind == "replan":
            t_before = self.ledger.total()
            C = self._replan_after_failure(exc, X)
            if event is not None:
                event.action = "replanned"
                event.recovery_seconds += self.ledger.total() - t_before
            return C
        if action.kind == "rollback":
            # The machine is healthy; only the numbers went bad.  Restore
            # the last checkpoint (charging the modelled read), drop any
            # acceleration state keyed to the poisoned trajectory, and
            # re-run from the snapshot.  No re-plan, no excised CGs.
            checkpoint = self.checkpoints.restore()
            C = np.array(checkpoint.centroids, copy=True)
            self._reset_state_after_replan()
            self.supervisor.record(
                "rollback",
                f"restored checkpoint from iteration "
                f"{checkpoint.iteration} after {type(exc).__name__}: {exc}",
            )
            if event is not None:
                event.action = "rolled_back"
            return C
        if event is not None:
            event.action = "fatal"
        raise exc

    # -- driver --------------------------------------------------------------------

    def _load_resume_state(self, C: np.ndarray) -> Tuple[np.ndarray, int]:
        """Load the durable snapshot for a ``resume=True`` run.

        Returns the centroids to start from and the iteration they were
        taken at (0 when the directory holds no snapshot yet — a cold
        start).  The snapshot must match the requested problem shape.
        """
        # A durable snapshot holds (iteration, centroids) only — any
        # in-memory bound state predates the restore and must not leak
        # into the resumed trajectory (invariant: bounds invalidation).
        self._pruned_bounds.invalidate()
        try:
            snapshot = load_checkpoint(self.checkpoints.directory,
                                       integrity=self.integrity)
        except IntegrityError as exc:
            # Under repair a rotted snapshot is survivable: fall back to a
            # cold start from the passed centroids (the same thing an empty
            # directory means).  verify and off surface the damage — a
            # wrong-bytes resume would silently diverge.
            if self.integrity != "repair":
                raise
            self.supervisor.record(
                "integrity",
                f"durable snapshot failed verification ({exc}); "
                f"cold start",
            )
            return C, 0
        if snapshot is None:
            self.supervisor.record(
                "resume",
                f"no snapshot in {self.checkpoints.directory!r}; "
                f"cold start",
            )
            return C, 0
        if snapshot.centroids.shape != C.shape:
            raise ConfigurationError(
                f"checkpoint in {self.checkpoints.directory!r} holds "
                f"centroids of shape {snapshot.centroids.shape}, but this "
                f"run uses {C.shape}"
            )
        self.checkpoints.adopt(snapshot)
        self.supervisor.record(
            "resume",
            f"resumed from {self.checkpoints.directory!r} at iteration "
            f"{snapshot.iteration}",
        )
        restored = np.array(snapshot.centroids, copy=True).astype(
            C.dtype, copy=False)
        return restored, int(snapshot.iteration)

    def run(self, X: np.ndarray, centroids: np.ndarray, max_iter: int = 100,
            tol: float = 0.0) -> KMeansResult:
        """Run to convergence (or ``max_iter``) from ``centroids``."""
        if max_iter < 1:
            raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
        if tol < 0:
            raise ConfigurationError(f"tol must be >= 0, got {tol}")
        X, C = validate_data(X, np.array(centroids, copy=True))

        start_iteration = 0
        if self.resume:
            C, start_iteration = self._load_resume_state(C)
        self.setup(X, C)
        if start_iteration > 0:
            # Epoch numbering continues where the killed run left off, so
            # the resumed trajectory's telemetry lines up bit-for-bit with
            # the uninterrupted run's.
            self.ledger.skip_to(start_iteration)
        else:
            self.checkpoints.save_initial(C)

        self.supervisor.start()
        history = []
        assignments = np.full(X.shape[0], -1, dtype=np.int64)
        converged = False
        it = start_iteration
        for _ in range(start_iteration, max_iter):
            it = self.ledger.next_iteration()
            self.supervisor.begin_iteration(it)
            t_before = self.ledger.total()
            attempt = 0
            while True:
                try:
                    if self.injector is not None:
                        self.injector.begin_iteration(it)
                    self._iter_inertia = None
                    new_assignments, new_C = self.iterate(X, C)
                    self._check_finite(new_C, it)
                    break
                except FaultError as exc:
                    attempt += 1
                    # Partial charges from the failed attempt stay on the
                    # ledger as wasted work, exactly as on the real machine.
                    C = self._handle_fault(exc, attempt, X, C)
                finally:
                    self.supervisor.absorb(self.engine)
            t_iter = self.ledger.total() - t_before

            shift = max_centroid_shift(C, new_C)
            history.append(IterationStats(
                iteration=it,
                # The fused Assign+Accumulate already produced the winning
                # distances; only executors without them (the bounded
                # executor, whose ub is a drifted bound, not a distance)
                # pay a fresh X - C[assignments] pass here.
                inertia=(self._iter_inertia if self._iter_inertia is not None
                         else inertia(X, C, new_assignments)),
                centroid_shift=shift,
                n_reassigned=int((new_assignments != assignments).sum()),
                modelled_seconds=t_iter,
            ))
            assignments = new_assignments
            C = new_C
            self.supervisor.end_iteration(it)
            if shift <= tol:
                converged = True
                break
            self.checkpoints.maybe_save(it, C)

        if not converged and history:
            warnings.warn(
                f"level {self.level} executor did not converge in "
                f"{max_iter} iterations (last centroid shift "
                f"{history[-1].centroid_shift:.3g} > tol {tol:g}); "
                f"consider raising max_iter",
                ConvergenceWarning,
                stacklevel=2,
            )

        if (assignments < 0).any():
            # A resume at start_iteration >= max_iter runs zero iterations;
            # label against the restored centroids so the result is usable.
            assignments = self.kernel.assign(X, C)
        self.supervisor.absorb(self.engine)
        final_inertia = inertia(X, C, assignments)
        return KMeansResult(
            centroids=C,
            assignments=assignments,
            inertia=final_inertia,
            n_iter=it,
            converged=converged,
            history=history,
            # Pure-numerics runs report no ledger, like the serial baseline.
            ledger=self.ledger if self.ledger.enabled else None,
            level=self.level,
            fault_events=list(self.injector.events)
            if self.injector is not None else [],
            host_events=list(self.supervisor.events),
        )
