"""Public facade: hierarchical k-means with automatic level selection.

:class:`HierarchicalKMeans` is the API a downstream user touches.  It picks
the cheapest partition level that fits the problem — the flexibility claim
of the paper's section III.D: low-dimensional small-k workloads run Level 1,
centroid-heavy workloads run Level 2, and only problems whose (k, d)
footprint exceeds a core group's memory pay for the full nkd partition.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..analysis.envvars import ENV_CHECKPOINT_DIR, read_str
from ..errors import ConfigurationError, PartitionError
from ..machine.machine import Machine, sunway_machine
from ..runtime.engine import EngineLike, resolve_engine
from ..runtime.reduce import ReduceLike, resolve_reduce
from ..runtime.faults import resolve_fault_plan
from ._common import EMPTY_ACTIONS
from .checkpoint import CHECKPOINT_DIR_ENV
from .init import METHODS, RngLike, init_centroids
from .kernels import KernelLike, resolve_kernel
from .recovery import RecoveryLike, resolve_recovery
from .level1 import Level1Executor
from .level2 import Level2Executor
from .level3 import Level3Executor
from .level3_bounded import Level3BoundedExecutor
from .lloyd import lloyd
from .partition import plan_level1, plan_level2, plan_level3
from .result import KMeansResult

#: Accepted values for the ``level`` argument.
LEVELS = ("auto", 0, 1, 2, 3)


def select_level(machine: Machine, n: int, k: int, d: int,
                 dtype: np.dtype | type = np.float64) -> int:
    """Choose the lowest feasible partition level for (n, k, d).

    Lower levels have less read amplification and cheaper reductions, so
    they win whenever their memory constraints hold; Level 3 is the only
    option once ``k*d`` outgrows a core group.

    Raises
    ------
    PartitionError
        If not even Level 3 fits the machine.
    """
    for level, planner in ((1, plan_level1), (2, plan_level2),
                           (3, plan_level3)):
        try:
            planner(machine, n, k, d, dtype=dtype)
            return level
        except PartitionError:
            continue
    raise PartitionError(
        f"no partition level fits n={n}, k={k}, d={d} on a machine with "
        f"{machine.n_cgs} CGs and {machine.ldm_bytes} B LDM per CPE"
    )


class HierarchicalKMeans:
    """k-means on the simulated Sunway machine.

    Parameters
    ----------
    n_clusters:
        Number of centroids k.
    machine:
        Simulated machine to run on; defaults to one SW26010 node.
    level:
        ``"auto"`` (default) picks the lowest feasible level; 1/2/3 force a
        level; 0 runs the serial Lloyd baseline (no machine simulation).
    init:
        Initialisation strategy (see :mod:`repro.core.init`) — or an
        explicit (k, d) array of starting centroids.
    max_iter, tol:
        Convergence controls; ``tol=0`` reproduces the paper's
        "until each c_j is fixed".
    n_init:
        Number of restarts with different stochastic initialisations; the
        result with the lowest final inertia wins (requires a stochastic
        ``init``).  ``all_inertias_`` records every restart's objective.
    seed:
        Seed for stochastic initialisation (restarts derive child seeds).
    kernel:
        Compute backend for the Assign arithmetic: ``"naive"`` (direct-form
        distances, the fidelity reference), ``"gemm"`` (blocked
        ``|x|^2 - 2 X C^T + |c|^2`` — one BLAS matmul per block, the fast
        production path), or ``"pruned"`` (the gemm formulation plus
        per-block triangle-inequality bounds carried across iterations —
        bit-identical to ``"gemm"`` while skipping provably unchanged
        assignments; bounds are invalidated on resume/replan).  Unset, the
        ``REPRO_KERNEL`` environment variable is consulted, falling back
        to ``"naive"``.  An environment-sourced non-naive kernel is
        silently pinned back to naive on ``strict_cpe`` fidelity runs.
        See :mod:`repro.core.kernels`.
    engine:
        Host execution engine for the numerics: ``"serial"`` (default),
        ``"thread"``, or ``"process"``.  ``"thread"`` maps per-block
        Assign+Accumulate work across a thread pool (NumPy/BLAS release
        the GIL); ``"process"`` runs supervised forked workers over
        shared-memory operands, surviving worker crashes via respawn and
        poison-task quarantine (degrading gracefully to serial where
        ``fork`` or a second CPU is unavailable).  Either way the
        modelled cost charges stay in a fixed serial order, so centroids,
        ledgers, and fault replays are bit-identical on every engine.
        Unset, the ``REPRO_ENGINE``/``REPRO_WORKERS`` environment
        variables are consulted.  See :mod:`repro.runtime.engine` and
        :mod:`repro.runtime.process_engine`.
    workers:
        Worker count for the thread/process engines (defaults to the CPU
        count; ``workers > 1`` with ``engine`` unset implies
        ``"thread"``).
    reduce:
        Reduction topology merging the per-block ``(sums, counts)``
        partials: ``"serial"`` (default — the historical in-order fold,
        bit-identical to previous releases) or ``"tree"`` (balanced
        pairwise merges that run as engine tasks, unlocking parallel
        reduction at large k·d).  Either way the merge schedule is a pure
        function of the block count, so results are bit-identical across
        engines and worker counts for a fixed topology.  Unset, the
        ``REPRO_REDUCE`` environment variable is consulted.  See
        :mod:`repro.runtime.reduce`.
    integrity:
        Data-integrity mode for the host data planes: ``"off"`` (default),
        ``"verify"`` (ABFT-checksum every reduction partial, re-verify
        shared operands and checkpoint manifests; silent corruption raises
        :class:`~repro.errors.IntegrityError`), or ``"repair"``
        (additionally recompute the smallest corrupted unit, so runs under
        bitflip chaos finish bit-identical to fault-free ones).  Unset,
        the ``REPRO_INTEGRITY`` environment variable is consulted.  See
        :mod:`repro.runtime.integrity`.
    model_costs:
        When False, executors run pure numerics against a
        :class:`~repro.runtime.ledger.NullLedger`: no modelled seconds are
        charged and ``result.ledger`` is None — same centroids and
        assignments, zero simulation overhead.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` or compact spec
        string (``"cg_failure@3:cg=1;transient_dma:p=0.01"``, see
        :func:`~repro.runtime.faults.parse_fault_plan`) injected into the
        simulated run.  Requires ``model_costs=True`` and a simulated
        level (1-3).  Defaults to None: no injector is attached and the
        run is bit-identical to one without fault support.
    recovery:
        What to do when an injected fault fires: ``"retry"``, ``"replan"``,
        ``"fail_fast"`` (default), or a
        :class:`~repro.core.recovery.RecoveryPolicy` instance.
    checkpoint_every:
        Snapshot the centroids every this many iterations (modelled I/O
        charged to the ``checkpoint`` ledger category); None disables
        periodic snapshots.
    checkpoint_dir:
        Directory for *durable* snapshots: every checkpoint is also
        persisted as an atomic write-tmp → fsync → rename ``.npz``, so a
        killed process can ``resume``.  None consults the
        ``REPRO_CHECKPOINT_DIR`` environment variable.
    resume:
        Restart from the snapshot in ``checkpoint_dir`` instead of a fresh
        initialisation; the continuation is bit-identical to the
        uninterrupted run.  Incompatible with ``n_init > 1`` (a resumed
        trajectory belongs to exactly one restart).
    deadline_s:
        Wall-clock budget for each run in *real* seconds; past it the run
        aborts with :class:`~repro.errors.DeadlineExceededError` at the
        next iteration boundary.  None consults ``REPRO_DEADLINE``.
    watchdog_s:
        Per-iteration real-time threshold; slower iterations are flagged
        as ``slow_iteration`` entries in ``result.host_events``.
    empty_action:
        Empty-cluster rule for the Update step: ``"keep"`` (default) or
        ``"reseed_farthest"`` (deterministic farthest-point re-seeding).
    executor_kwargs:
        Extra keyword arguments forwarded to the level executor
        (``collective_algorithm``, ``strict_cpe``, ``streaming``,
        ``overlap_dma``, ``mgroup``, ``mprime_group``,
        ``supernode_aware``...).  ``bounded=True`` selects the
        Hamerly-filtered Level-3 executor when level 3 runs.

    Examples
    --------
    >>> from repro import HierarchicalKMeans, sunway_machine
    >>> from repro.data import gaussian_blobs
    >>> X, _ = gaussian_blobs(n=2000, k=16, d=32, seed=7)
    >>> model = HierarchicalKMeans(16, machine=sunway_machine(1), seed=7)
    >>> result = model.fit(X)
    >>> result.centroids.shape
    (16, 32)
    """

    def __init__(self, n_clusters: int, machine: Optional[Machine] = None,
                 level: Union[str, int] = "auto", init: Union[str, np.ndarray] = "kmeans++",
                 max_iter: int = 100, tol: float = 0.0, n_init: int = 1,
                 seed: RngLike = None, kernel: Optional[KernelLike] = None,
                 engine: EngineLike = None, workers: Optional[int] = None,
                 reduce: ReduceLike = None,
                 integrity: Optional[str] = None,
                 model_costs: bool = True, faults=None,
                 recovery: RecoveryLike = "fail_fast",
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir: Optional[str] = None,
                 resume: bool = False,
                 deadline_s: Optional[float] = None,
                 watchdog_s: Optional[float] = None,
                 empty_action: str = "keep",
                 **executor_kwargs) -> None:
        if n_clusters < 1:
            raise ConfigurationError(
                f"n_clusters must be >= 1, got {n_clusters}"
            )
        if n_init < 1:
            raise ConfigurationError(f"n_init must be >= 1, got {n_init}")
        if n_init > 1 and (isinstance(init, np.ndarray) or init == "first"):
            raise ConfigurationError(
                "n_init > 1 needs a stochastic init "
                "(\"random\" or \"kmeans++\"); deterministic restarts "
                "would all be identical"
            )
        if level not in LEVELS:
            raise ConfigurationError(
                f"level must be one of {LEVELS}, got {level!r}"
            )
        if isinstance(init, str) and init not in METHODS:
            raise ConfigurationError(
                f"init must be an array or one of {METHODS}, got {init!r}"
            )
        self.n_clusters = int(n_clusters)
        self.machine = machine if machine is not None else sunway_machine(1)
        self.level = level
        self.init = init
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.n_init = int(n_init)
        self.seed = seed
        # Resolve eagerly: invalid names fail at construction, and the
        # backend instance (with its scratch buffers) is shared by every
        # restart, executor, and predict() call.
        self.kernel = resolve_kernel(kernel)
        if (kernel is None and executor_kwargs.get("strict_cpe")
                and self.kernel.name != "naive"):
            # Mirror the executor rule: an ambient REPRO_KERNEL default
            # yields to strict-CPE fidelity (whose dataflow *is* the naive
            # form); only an explicit non-naive kernel is an error there.
            self.kernel = resolve_kernel("naive")
        # Same eager rule for the execution engine: bad names (or a
        # serial/workers conflict) fail here, and one engine instance is
        # shared by every restart and executor.  The integrity mode rides
        # along — resolved here (explicit > REPRO_INTEGRITY > off) and
        # stamped onto the engine, the executors, and the checkpoint store.
        self.engine = resolve_engine(engine, workers, integrity=integrity)
        self.integrity = self.engine.integrity
        # ... and for the reduction topology: a bad name fails here, and
        # the same topology drives every restart's partial merges.
        self.reduce = resolve_reduce(reduce)
        self.model_costs = bool(model_costs)
        # Resolve the fault plan and policy eagerly so a bad spec string or
        # policy name fails at construction, not restarts deep into fit().
        self.faults = resolve_fault_plan(
            faults, seed=seed if isinstance(seed, int) else 0)
        self.recovery = resolve_recovery(recovery)
        self.checkpoint_every = checkpoint_every
        if checkpoint_dir is None:
            checkpoint_dir = read_str(ENV_CHECKPOINT_DIR)
        self.checkpoint_dir = checkpoint_dir
        if resume and checkpoint_dir is None:
            raise ConfigurationError(
                "resume=True needs checkpoint_dir= (or the "
                f"{CHECKPOINT_DIR_ENV} environment variable)"
            )
        if resume and n_init > 1:
            raise ConfigurationError(
                "resume=True is incompatible with n_init > 1: a resumed "
                "trajectory belongs to exactly one restart"
            )
        self.resume = bool(resume)
        if deadline_s is not None and not deadline_s > 0:
            raise ConfigurationError(
                f"deadline_s must be > 0 or None, got {deadline_s}"
            )
        self.deadline_s = deadline_s
        if watchdog_s is not None and not watchdog_s > 0:
            raise ConfigurationError(
                f"watchdog_s must be > 0 or None, got {watchdog_s}"
            )
        self.watchdog_s = watchdog_s
        if empty_action not in EMPTY_ACTIONS:
            raise ConfigurationError(
                f"empty_action must be one of {EMPTY_ACTIONS}, "
                f"got {empty_action!r}"
            )
        self.empty_action = empty_action
        if self.faults:
            if not self.model_costs:
                raise ConfigurationError(
                    "faults= requires model_costs=True: fault hooks fire "
                    "from the cost-charging paths"
                )
            if level == 0:
                raise ConfigurationError(
                    "faults= requires a simulated level (1-3); the serial "
                    "Lloyd baseline (level=0) has no machine to fail"
                )
        self.executor_kwargs = executor_kwargs
        #: Filled by fit(): the level that actually ran.
        self.selected_level_: Optional[int] = None
        self.result_: Optional[KMeansResult] = None
        #: Final inertia of every restart (length n_init after fit()).
        self.all_inertias_: list[float] = []

    # -- API -----------------------------------------------------------------

    def initial_centroids(self, X: np.ndarray) -> np.ndarray:
        """Materialise the starting centroid set for ``X``."""
        if isinstance(self.init, np.ndarray):
            C = np.asarray(self.init, dtype=np.float64)
            if C.shape != (self.n_clusters, X.shape[1]):
                raise ConfigurationError(
                    f"explicit init centroids must have shape "
                    f"({self.n_clusters}, {X.shape[1]}), got {C.shape}"
                )
            return np.array(C, copy=True)
        return init_centroids(X, self.n_clusters, method=self.init,
                              seed=self.seed)

    def resolve_level(self, X: np.ndarray) -> int:
        """The level fit() would use for this data (without running it)."""
        if self.level != "auto":
            return int(self.level)
        return select_level(self.machine, X.shape[0], self.n_clusters,
                            X.shape[1], dtype=X.dtype)

    def fit(self, X: np.ndarray) -> KMeansResult:
        """Cluster ``X``; returns (and stores) the best restart's result."""
        X = np.asarray(X)
        if X.ndim != 2:
            raise ConfigurationError(f"X must be 2-D, got shape {X.shape}")
        level = self.resolve_level(X)

        if self.n_init == 1:
            result = self._fit_once(X, level, self.initial_centroids(X))
            self.all_inertias_ = [result.inertia]
        else:
            root = np.random.SeedSequence(
                self.seed if isinstance(self.seed, int) else None)
            best: Optional[KMeansResult] = None
            self.all_inertias_ = []
            for child in root.spawn(self.n_init):
                rng = np.random.default_rng(child)
                C0 = init_centroids(X, self.n_clusters, method=self.init,
                                    seed=rng)
                candidate = self._fit_once(X, level, C0)
                self.all_inertias_.append(candidate.inertia)
                if best is None or candidate.inertia < best.inertia:
                    best = candidate
            result = best

        self.selected_level_ = level
        self.result_ = result
        return result

    def _fit_once(self, X: np.ndarray, level: int,
                  C0: np.ndarray) -> KMeansResult:
        """One run at a resolved level from explicit initial centroids."""

        kwargs = dict(self.executor_kwargs)
        bounded = kwargs.pop("bounded", False)
        if bounded and level != 3:
            raise ConfigurationError(
                f"bounded=True requires Level 3 (bounds compose with the "
                f"nkd partition); the resolved level is {level}"
            )
        if level == 0:
            return lloyd(X, C0, max_iter=self.max_iter, tol=self.tol,
                         kernel=self.kernel, engine=self.engine,
                         reduce=self.reduce,
                         empty_action=self.empty_action,
                         deadline_s=self.deadline_s,
                         watchdog_s=self.watchdog_s,
                         checkpoint_every=self.checkpoint_every,
                         checkpoint_dir=self.checkpoint_dir,
                         resume=self.resume,
                         integrity=self.integrity)
        kwargs.setdefault("kernel", self.kernel)
        kwargs.setdefault("engine", self.engine)
        kwargs.setdefault("reduce", self.reduce)
        kwargs.setdefault("integrity", self.integrity)
        kwargs.setdefault("model_costs", self.model_costs)
        # A fresh injector is built per run (inside the executor), so every
        # restart replays the same plan from the same seed.
        kwargs.setdefault("faults", self.faults)
        kwargs.setdefault("recovery", self.recovery)
        kwargs.setdefault("checkpoint_every", self.checkpoint_every)
        kwargs.setdefault("checkpoint_dir", self.checkpoint_dir)
        kwargs.setdefault("resume", self.resume)
        kwargs.setdefault("deadline_s", self.deadline_s)
        kwargs.setdefault("watchdog_s", self.watchdog_s)
        kwargs.setdefault("empty_action", self.empty_action)
        if level == 1:
            executor = Level1Executor(self.machine, **kwargs)
            return executor.run(X, C0, max_iter=self.max_iter, tol=self.tol)
        if level == 2:
            executor = Level2Executor(self.machine, **kwargs)
            return executor.run(X, C0, max_iter=self.max_iter, tol=self.tol)
        if level == 3:
            cls = Level3BoundedExecutor if bounded else Level3Executor
            executor = cls(self.machine, **kwargs)
            return executor.run(X, C0, max_iter=self.max_iter, tol=self.tol)
        raise ConfigurationError(  # pragma: no cover - guarded by LEVELS
            f"unsupported level {level}")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid assignment of new samples under the fitted model."""
        if self.result_ is None:
            raise ConfigurationError("fit() must be called before predict()")
        return self.kernel.assign(np.asarray(X), self.result_.centroids)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """fit() then return the training assignments."""
        return self.fit(X).assignments
