"""Centroid initialisation strategies.

The paper treats initial centroids as an input ("initial centroid set C")
and studies per-iteration cost only, so any strategy works for reproducing
its figures; the library still provides the standard ones for real use:

* ``"first"``     — the first k samples (deterministic, what a fixed input
  file gives you; used by the experiments so every level starts identically),
* ``"random"``    — k distinct samples chosen uniformly,
* ``"kmeans++"``  — D^2 weighting [Arthur & Vassilvitskii 2007], the default
  for quality-sensitive applications such as the land-cover demo.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError, DataShapeError
from ._common import chunk_ranges, squared_distances

#: Strategies accepted by :func:`init_centroids`.
METHODS = ("first", "random", "kmeans++")

RngLike = Union[int, np.random.Generator, None]


def _as_rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def init_centroids(X: np.ndarray, k: int, method: str = "kmeans++",
                   seed: RngLike = None) -> np.ndarray:
    """Choose k initial centroids from the rows of X.

    Parameters
    ----------
    X:
        (n, d) sample matrix.
    k:
        Number of centroids; must satisfy ``1 <= k <= n``.
    method:
        One of :data:`METHODS`.
    seed:
        Seed or Generator for the stochastic methods.

    Returns
    -------
    (k, d) float array, a copy (safe to mutate).
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise DataShapeError(f"X must be 2-D, got shape {X.shape}")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ConfigurationError(f"k must be in [1, n={n}], got {k}")
    if method not in METHODS:
        raise ConfigurationError(
            f"unknown init method {method!r}; expected one of {METHODS}"
        )
    if method == "first":
        return np.array(X[:k], dtype=np.float64, copy=True)
    rng = _as_rng(seed)
    if method == "random":
        idx = rng.choice(n, size=k, replace=False)
        return np.array(X[np.sort(idx)], dtype=np.float64, copy=True)
    return _kmeans_plus_plus(X.astype(np.float64, copy=False), k, rng)


def _kmeans_plus_plus(X: np.ndarray, k: int,
                      rng: np.random.Generator) -> np.ndarray:
    """D^2-weighted seeding.

    Each new centroid is drawn with probability proportional to the squared
    distance from the nearest already-chosen centroid.  Distances are
    maintained incrementally (one (n,) vector), not recomputed per round.
    """
    n, d = X.shape
    centroids = np.empty((k, d), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = X[first]
    # Min squared distance to any chosen centroid so far.
    d2 = squared_distances(X, centroids[:1])[:, 0]
    for j in range(1, k):
        total = d2.sum()
        if total <= 0.0:
            # All remaining mass is on already-chosen points (duplicates):
            # fall back to uniform choice among all samples.
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=d2 / total))
        centroids[j] = X[choice]
        np.minimum(d2, squared_distances(X, centroids[j:j + 1])[:, 0], out=d2)
    return centroids


def spread_centroids(k: int, d: int, low: float = -1.0, high: float = 1.0,
                     seed: RngLike = 0) -> np.ndarray:
    """Uniform random centroids in a box — for cost benchmarks where only
    the (k, d) shape matters, not clustering quality."""
    if k < 1 or d < 1:
        raise ConfigurationError(f"k and d must be >= 1, got k={k}, d={d}")
    rng = _as_rng(seed)
    return rng.uniform(low, high, size=(k, d))
