"""Shared numerical kernels for all k-means implementations.

Every level (serial Lloyd, Level 1/2/3 executors) funnels its arithmetic
through these helpers so that the partitioned implementations are numerically
comparable to the baseline: the same distance formulation, the same
tie-breaking (lowest centroid index wins), and the same empty-cluster rule
(an empty cluster keeps its previous centroid).

Kernels are vectorised NumPy with explicit chunking so the transient
``n x k`` distance block never exceeds a bounded working set — the in-memory
analogue of streaming samples through the LDM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, DataShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernels import KernelBackend

#: Number of distance-matrix elements a single chunk may hold.
DEFAULT_CHUNK_ELEMENTS = 4_000_000

#: Empty-cluster rules :func:`update_centroids` accepts.
EMPTY_ACTIONS = ("keep", "reseed_farthest")

#: Elements of the flat scatter-index temporary one accumulate pass may
#: build (bounds the int64 temp at ~128 MB).  Below this, accumulation is a
#: single ``np.bincount`` sweep and therefore bit-identical to the
#: element-at-a-time ``np.add.at`` it replaced; above it, per-chunk partials
#: merge in chunk order (fp-reassociation tolerance, like every sharded
#: reduction in this codebase).
ACCUMULATE_FLAT_ELEMENTS = 1 << 24


def validate_data(X: np.ndarray, C: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Check sample/centroid matrices agree; return them as float ndarrays."""
    X = np.ascontiguousarray(X)
    C = np.ascontiguousarray(C)
    if X.ndim != 2:
        raise DataShapeError(f"X must be 2-D (n, d), got shape {X.shape}")
    if C.ndim != 2:
        raise DataShapeError(f"C must be 2-D (k, d), got shape {C.shape}")
    if X.shape[1] != C.shape[1]:
        raise DataShapeError(
            f"dimension mismatch: samples have d={X.shape[1]}, "
            f"centroids have d={C.shape[1]}"
        )
    if X.shape[0] == 0:
        raise DataShapeError("X must contain at least one sample")
    if C.shape[0] == 0:
        raise DataShapeError("C must contain at least one centroid")
    if not np.issubdtype(X.dtype, np.floating):
        X = X.astype(np.float64)
    if C.dtype != X.dtype:
        C = C.astype(X.dtype)
    # Non-finite samples silently poison every distance, accumulator, and
    # centroid downstream; fail loudly at the door instead.
    if not np.isfinite(X).all():
        raise DataShapeError("X contains non-finite values (NaN or Inf)")
    if not np.isfinite(C).all():
        raise DataShapeError("C contains non-finite values (NaN or Inf)")
    return X, C


def squared_distances(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Dense squared Euclidean distances, shape (n, k).

    Uses the direct ``sum((x - c)^2)`` formulation (not the expanded
    ``|x|^2 - 2 x.c + |c|^2``) because the direct form is what the partitioned
    dimension slices compute and sum — keeping serial and Level-3 arithmetic
    on the same path.  The expanded form is available separately for the
    ablation benchmark.
    """
    # einsum keeps the temporaries small relative to broadcasting (n,k,d).
    diff = X[:, None, :] - C[None, :, :]
    return np.einsum("nkd,nkd->nk", diff, diff)


def squared_distances_expanded(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Expanded-form distances ``|x|^2 - 2 x.c + |c|^2`` (ablation kernel).

    One GEMM instead of an (n, k, d) temporary: faster, but numerically
    different from the direct form (catastrophic cancellation for near ties).
    """
    x_sq = np.einsum("nd,nd->n", X, X)
    c_sq = np.einsum("kd,kd->k", C, C)
    d2 = x_sq[:, None] - 2.0 * (X @ C.T) + c_sq[None, :]
    np.maximum(d2, 0.0, out=d2)
    return d2


def chunk_ranges(n: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Yield (start, stop) covering [0, n) in blocks of at most ``chunk``."""
    if chunk < 1:
        raise DataShapeError(f"chunk must be >= 1, got {chunk}")
    for start in range(0, n, chunk):
        yield start, min(start + chunk, n)


def assign_chunked(X: np.ndarray, C: np.ndarray,
                   chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
                   expanded: bool = False,
                   kernel: Optional["KernelBackend"] = None) -> np.ndarray:
    """Nearest-centroid assignment for every sample, bounded working set.

    Returns int64 indices; ties go to the lowest centroid index (np.argmin
    semantics), matching the deterministic hardware reduction trees of the
    simulated machine.

    ``kernel`` (a backend name or :class:`~repro.core.kernels.KernelBackend`)
    dispatches to the pluggable kernel layer; when None, the historical
    direct/expanded chunked forms run here.
    """
    if kernel is not None:
        from .kernels import resolve_kernel  # late: kernels imports _common
        return resolve_kernel(kernel).assign(X, C, chunk_elements)
    X, C = validate_data(X, C)
    n, k, d = X.shape[0], C.shape[0], X.shape[1]
    form = squared_distances_expanded if expanded else squared_distances
    # The direct form builds a (rows, k, d) subtraction temporary, so its
    # working set is rows*k*d — not rows*k like the expanded form's GEMM
    # output.  Size the chunk by the term that actually binds.
    per_row = max(k, 1) if expanded else max(k * d, 1)
    rows = max(1, chunk_elements // per_row)
    out = np.empty(n, dtype=np.int64)
    for lo, hi in chunk_ranges(n, rows):
        out[lo:hi] = np.argmin(form(X[lo:hi], C), axis=1)
    return out


def assign_with_distances(X: np.ndarray, C: np.ndarray,
                          chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
                          kernel: Optional["KernelBackend"] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Assignments plus the squared distance to the winning centroid.

    A thin dispatcher into the kernel layer's
    :meth:`~repro.core.kernels.KernelBackend.assign_with_distances` — the
    chunking and tie-break logic lives there, in exactly one place.
    ``kernel=None`` keeps the historical behaviour (direct-form distances).
    """
    from .kernels import resolve_kernel  # late: kernels imports _common
    backend = resolve_kernel("naive" if kernel is None else kernel)
    return backend.assign_with_distances(X, C, chunk_elements)


def accumulate(X: np.ndarray, assignments: np.ndarray, k: int
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cluster vector sums and member counts.

    Implements lines 11-12 of the paper's Algorithm 1 (the two accumulated
    variables).  The scatter adds run as ``np.bincount`` over flattened
    (cluster, dimension) indices — one C-speed pass instead of the
    ``np.add.at`` buffered scatter it replaced (typically 10-50x faster on
    this path), accumulating element-for-element in the same sample order,
    so the sums are bit-identical as long as one pass suffices (see
    :data:`ACCUMULATE_FLAT_ELEMENTS`).
    """
    if assignments.shape[0] != X.shape[0]:
        raise DataShapeError(
            f"assignments length {assignments.shape[0]} != n {X.shape[0]}"
        )
    n, d = X.shape
    counts = np.zeros(k, dtype=np.int64)
    sums = np.zeros((k, d), dtype=np.float64)
    if n == 0:
        return sums, counts
    if assignments.min() < 0 or assignments.max() >= k:
        raise DataShapeError(
            f"assignments must lie in [0, {k}), got range "
            f"[{assignments.min()}, {assignments.max()}]"
        )
    counts += np.bincount(assignments, minlength=k)
    cols = np.arange(d, dtype=np.int64)
    rows = max(1, ACCUMULATE_FLAT_ELEMENTS // max(d, 1))
    for lo, hi in chunk_ranges(n, rows):
        flat = (assignments[lo:hi, None] * d + cols[None, :]).ravel()
        part = np.bincount(flat, weights=X[lo:hi].ravel(), minlength=k * d)
        if lo == 0 and hi == n:
            sums = part.reshape(k, d)
        else:
            sums += part.reshape(k, d)
    return sums, counts


def update_centroids(sums: np.ndarray, counts: np.ndarray,
                     previous: np.ndarray, empty_action: str = "keep",
                     X: np.ndarray = None,
                     best_d2: np.ndarray = None) -> np.ndarray:
    """New centroids = sums / counts, with a deterministic empty-cluster rule.

    The paper's Algorithm 1 line 15 divides unconditionally; a real run never
    hits count == 0 on its benchmarks, but a robust library must not emit
    NaNs.  Every level shares this rule so their trajectories agree.

    ``empty_action="keep"`` (the default, and the historical rule) leaves an
    empty cluster's previous centroid in place.  ``"reseed_farthest"``
    relocates each empty cluster onto the sample farthest from its winning
    centroid — the standard farthest-point re-seeding, made deterministic by
    a stable sort (equal distances break toward the lower sample index).  It
    needs ``X`` and the per-sample winning squared distances ``best_d2``;
    when only ``X`` is available the distances are recomputed, and this
    happens *only* when an empty cluster actually occurs, so the common path
    pays nothing.
    """
    if empty_action not in EMPTY_ACTIONS:
        raise ConfigurationError(
            f"empty_action must be one of {EMPTY_ACTIONS}, "
            f"got {empty_action!r}"
        )
    counts = np.asarray(counts)
    new = np.array(previous, dtype=np.float64, copy=True)
    nonempty = counts > 0
    new[nonempty] = sums[nonempty] / counts[nonempty, None]
    if empty_action == "reseed_farthest" and not nonempty.all():
        if X is None:
            raise ConfigurationError(
                "empty_action='reseed_farthest' needs the samples X to "
                "reseed from"
            )
        if best_d2 is None:
            # Only executors without exact winning distances (the bounded
            # variant keeps drifted bounds, not distances) land here, and
            # only on the rare empty-cluster iteration.
            _, best_d2 = assign_with_distances(X, previous)
        # Farthest samples first; kind="stable" pins the order of exact
        # distance ties to the lower sample index, keeping the rule
        # bit-reproducible across engines and worker counts.
        farthest = np.argsort(-np.asarray(best_d2), kind="stable")
        empty_idx = np.flatnonzero(~nonempty)
        picks = farthest[:len(empty_idx)]
        # k > n can leave more empty clusters than samples; the overflow
        # falls back to the keep rule.
        empty_idx = empty_idx[:len(picks)]
        new[empty_idx] = X[picks]
    return new.astype(previous.dtype, copy=False)


def inertia(X: np.ndarray, C: np.ndarray, assignments: np.ndarray) -> float:
    """Objective O(C): mean squared distance of samples to their centroid."""
    diff = X - C[assignments]
    return float(np.einsum("nd,nd->", diff, diff) / X.shape[0])


def max_centroid_shift(old: np.ndarray, new: np.ndarray) -> float:
    """Largest per-centroid L2 movement between two centroid sets."""
    return float(np.sqrt(((new - old) ** 2).sum(axis=1)).max())


def even_slices(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split [0, total) into ``parts`` contiguous, balanced (start, stop).

    The first ``total % parts`` slices get one extra element.  Slices may be
    empty when parts > total — callers that cannot tolerate empty slices must
    validate at plan time.
    """
    if parts < 1:
        raise DataShapeError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(total, parts)
    out: List[Tuple[int, int]] = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size))
        start += size
    return out
