"""Level 1 executor — dataflow (n) partition, the paper's Algorithm 1.

Every active CPE holds the *entire* centroid set in its LDM and streams a
contiguous block of samples: it assigns each sample to its nearest centroid
and accumulates per-centroid vector sums and counts.  The Update step is two
AllReduce operations — register communication inside each CG, MPI across
CGs — followed by the division.

This is the classic design used on Jaguar [Kumar et al.] and Gordon [Cai et
al.]; it scales n but caps k and d jointly by a single CPE's 64 KB LDM
(constraint C1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.machine import Machine
from ..runtime.compute import distance_flops
from ..runtime.dma import DMAEngine
from ..runtime.mpi import SimComm
from ..runtime.reduce import scatter_labels
from ..runtime.regcomm import RegisterComm
from .block_tasks import FusedAssignTask, fused_assign_block, kernel_token
from .executor_base import LevelExecutor
from .partition import Level1Plan, plan_level1
from .result import KMeansResult


class Level1Executor(LevelExecutor):
    """Simulated execution of the n-partition algorithm."""

    level = 1

    def __init__(self, machine: Machine, plan: Optional[Level1Plan] = None,
                 **kwargs) -> None:
        super().__init__(machine, **kwargs)
        self._plan = plan
        self._itemsize = 8
        self._regcomm = RegisterComm(machine.spec.processor.cg, self.ledger,
                                     injector=self.injector)
        self._dma = DMAEngine(machine.spec.processor.cg, self.ledger,
                              injector=self.injector)
        self._comm: Optional[SimComm] = None
        #: active CPE units per CG: cg_index -> list of unit ids
        self._units_by_cg: Dict[int, List[int]] = {}

    @property
    def plan(self) -> Level1Plan:
        if self._plan is None:
            raise RuntimeError("executor has not been set up yet")
        return self._plan

    # -- setup ------------------------------------------------------------------

    def setup(self, X: np.ndarray, C: np.ndarray) -> None:
        n, d = X.shape
        k = C.shape[0]
        if self._plan is None:
            self._plan = plan_level1(self.machine, n, k, d, dtype=X.dtype)
        plan = self._plan
        self._itemsize = np.dtype(plan.dtype).itemsize

        by_cg: Dict[int, List[int]] = defaultdict(list)
        for unit in range(plan.units):
            by_cg[plan.cg_of_unit[unit]].append(unit)
        self._units_by_cg = dict(by_cg)

        active_cgs = sorted(self._units_by_cg)
        self._comm = SimComm(self.machine, active_cgs, self.ledger,
                             self.collective_algorithm,
                             injector=self.injector)

        # One-time broadcast of the initial centroids to every active CPE
        # (iteration epoch 0 in the ledger).
        if self.model_costs:
            self.ledger.charge(
                "network", "l1.setup.bcast_centroids",
                self._comm.bcast_time(k * d * self._itemsize),
            )

    # -- one iteration ------------------------------------------------------------

    def iterate(self, X: np.ndarray, C: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        plan = self.plan
        n, d = X.shape
        k = C.shape[0]
        item = self._itemsize
        assert self._comm is not None

        assignments = np.empty(n, dtype=np.int64)
        best_d2 = np.empty(n, dtype=X.dtype)

        # ---- Assign phase: fully parallel over active CPEs ----
        # The per-unit numerics (fused assign + accumulate) fan out over the
        # host execution engine as module-level block tasks (picklable, so
        # the process engine can ship them; operands travel by share()).
        # The merge mirrors the hardware hierarchy: partials reduce within
        # each CG first, then across CGs in sorted-CG order — a grouped
        # topology whose schedule depends only on the unit layout, so the
        # result is engine-independent; labels scatter back in fixed unit
        # order.
        pruned = self.kernel.name == "pruned"
        topology = self.reduce.for_groups(
            [self._units_by_cg[cg] for cg in sorted(self._units_by_cg)])
        if pruned:
            # Same block boundaries and topology; the tasks additionally
            # carry the per-sample bound state (see executor_base).
            merged, partials = self._pruned_map_reduce(
                X, C, plan.sample_blocks, topology)
        else:
            x_ref = self.engine.share("X", X)
            c_ref = self.engine.share("C", C)
            token = kernel_token(self.kernel)
            tasks = [FusedAssignTask(x_ref, c_ref, lo, hi, token)
                     for lo, hi in plan.sample_blocks]
            merged, partials = self.engine.map_reduce(
                fused_assign_block, tasks, topology=topology,
                return_partials=True)
        global_sums, global_counts = merged.sums, merged.counts
        scatter_labels(partials, assignments, best_d2)
        self._iter_inertia = float(best_d2.sum() / n)

        # ---- cost model (fixed CG/unit order, independent of the engine) ----
        if self.model_costs:
            dma_times: List[float] = []       # one per CG (shared engine)
            compute_times: List[float] = []   # one per CPE
            for cg_index, units in sorted(self._units_by_cg.items()):
                cg_bytes = 0
                for unit in units:
                    lo, hi = plan.sample_blocks[unit]
                    b = hi - lo
                    # Sample stream + per-iteration centroid refresh, per
                    # paper's Tread = (n*d/m + k*d)/B.
                    cg_bytes += (b * d + k * d) * item
                    if pruned:
                        # Charge the distance work actually performed
                        # (scaled by the unit's evaluation count) plus 2
                        # flops/sample of bound tests, so the cost model
                        # sees the pruning win.  DMA is unchanged: the
                        # block still streams in full for the Update
                        # accumulation.
                        flops = (3.0 * partials[unit].n_dist * d
                                 + 2.0 * b + b * d)
                    else:
                        flops = float(distance_flops(b, k, d)
                                      + b * d)  # accumulate adds
                    compute_times.append(self.compute.time_for_flops(
                        flops, n_cpes=1))
                dma_times.append(self._dma.transfer_time(cg_bytes))
            self.charge_stream_phases("l1.assign", dma_times, compute_times)

        # ---- Update phase: AllReduce within CG (register comm) ----
        # The within-CG and cross-CG merges already ran (in this exact
        # hierarchical order) inside map_reduce; here the modelled cost of
        # each stage is charged, every CG performing the same-size mesh
        # allreduce concurrently.
        payload = (k * d + k) * item
        if self.model_costs:
            self.ledger.charge("regcomm", "l1.update.intra_cg_allreduce",
                               self._regcomm.allreduce_time(payload))

        # ---- AllReduce across CGs (MPI) ----
        # allreduce_time fires the same fault-injection probe, with the
        # same label and payload, as the data-carrying collective it
        # prices.
        if self._comm.size > 1:
            self.ledger.charge(
                "network", "l1.update.inter_cg_allreduce.sums",
                self._comm.allreduce_time(
                    global_sums.nbytes,
                    label="l1.update.inter_cg_allreduce.sums"))
            self.ledger.charge(
                "network", "l1.update.inter_cg_allreduce.counts",
                self._comm.allreduce_time(
                    global_counts.nbytes,
                    label="l1.update.inter_cg_allreduce.counts"))

        # ---- Divide (line 15) — every CPE updates its local copy ----
        if self.model_costs:
            self.ledger.charge("compute", "l1.update.divide",
                               self.compute.time_for_flops(k * d, n_cpes=1))
        new_C = self.update_step(global_sums, global_counts, C,
                                 X=X, best_d2=best_d2)
        if pruned:
            # Last act of the iteration — after every fault-prone charge —
            # so a faulted iteration never half-commits bound state.
            self._commit_pruned_state(C, assignments, best_d2, partials)
        return assignments, new_C


def run_level1(X: np.ndarray, centroids: np.ndarray, machine: Machine,
               max_iter: int = 100, tol: float = 0.0,
               **executor_kwargs: object) -> KMeansResult:
    """Convenience wrapper: plan, execute, and return the result."""
    executor = Level1Executor(machine, **executor_kwargs)
    return executor.run(X, centroids, max_iter=max_iter, tol=tol)
