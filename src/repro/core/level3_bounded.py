"""Level 3 + triangle-inequality bounds — the paper's future-work direction.

The paper explicitly scopes out "optimization of the underlying Lloyd
algorithm" and closes by proposing to "optimize this and potentially
similar algorithms" on the hierarchy.  This executor is that extension:
the nkd partition of Algorithm 3 combined with Hamerly-style bounds
[Hamerly 2010], so samples whose assignment provably cannot change skip
the distance computation, the mesh reduce, *and* the inter-CG MINLOC.

What changes relative to :class:`~repro.core.level3.Level3Executor`:

* per-sample state (upper bound to the assigned centroid, lower bound to
  the second-closest) survives across iterations, drifting with centroid
  movement — 2 extra LDM elements per resident sample, negligible;
* each iteration only *candidate* samples (bound test failed) pay the
  distance kernel and the a(i) communication; everything still streams
  for the Update accumulation, so DMA is unchanged;
* the trajectory is exactly Lloyd's (the bounds are conservative), which
  the tests assert against both serial Lloyd and the unbounded executor.

The ``extra_bounded`` experiment quantifies the modelled savings: late
iterations — where almost nothing moves — drop most of their compute and
MINLOC cost, which is exactly where long k-means runs spend their time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..machine.machine import Machine
from ..runtime.compute import distance_flops
from .block_tasks import AccumulateTask, accumulate_block
from .bounds import apply_hamerly_drift, centroid_drift, centroid_separation
from .level3 import Level3Executor
from .result import KMeansResult


class Level3BoundedExecutor(Level3Executor):
    """nkd-partitioned k-means with Hamerly bounds."""

    level = 3

    def __init__(self, machine: Machine, **kwargs) -> None:
        super().__init__(machine, **kwargs)
        self._ub: Optional[np.ndarray] = None
        self._lb: Optional[np.ndarray] = None
        self._assignments: Optional[np.ndarray] = None
        self._prev_C: Optional[np.ndarray] = None
        #: candidates examined per iteration (for tests/reports).
        self.candidates_per_iteration: List[int] = []

    def _reset_state_after_replan(self) -> None:
        # The restored checkpoint invalidates the persistent Hamerly state:
        # bounds drifted against centroids that no longer exist would be
        # unsound, so the next iterate re-establishes them exactly.  The
        # base class invalidates the pruned kernel's bound state the same
        # way.
        super()._reset_state_after_replan()
        self._ub = None
        self._lb = None
        self._assignments = None
        self._prev_C = None

    # -- bound maintenance -------------------------------------------------------

    def _full_assign_with_bounds(self, X: np.ndarray, C: np.ndarray) -> None:
        """Exact assignment of every sample; establishes ub/lb."""
        n, k = X.shape[0], C.shape[0]
        dist = np.sqrt(np.maximum(self.kernel.pairwise_sq(X, C), 0.0))
        order = np.argsort(dist, axis=1)
        self._assignments = order[:, 0].astype(np.int64)
        self._ub = dist[np.arange(n), order[:, 0]]
        self._lb = (dist[np.arange(n), order[:, 1]] if k > 1
                    else np.full(n, np.inf))

    def _candidate_mask(self, C: np.ndarray) -> np.ndarray:
        """Samples whose assignment might change this iteration."""
        assert self._ub is not None and self._lb is not None
        # The kernel's pairwise form keeps this executor's historical
        # separation values bit-for-bit (the shared helper's default is
        # the direct form).
        _, s = centroid_separation(C, sq=self.kernel.pairwise_sq)
        threshold = np.maximum(s[self._assignments], self._lb)
        return self._ub > threshold

    def _reassign_candidates(self, X: np.ndarray, C: np.ndarray,
                             mask: np.ndarray) -> None:
        """Exact re-assignment (and bound refresh) of the masked samples."""
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return
        k = C.shape[0]
        dist = np.sqrt(np.maximum(self.kernel.pairwise_sq(X[idx], C), 0.0))
        order = np.argsort(dist, axis=1)
        self._assignments[idx] = order[:, 0]
        self._ub[idx] = dist[np.arange(idx.size), order[:, 0]]
        self._lb[idx] = (dist[np.arange(idx.size), order[:, 1]]
                         if k > 1 else np.inf)

    def _drift_bounds(self, old_C: np.ndarray, new_C: np.ndarray) -> None:
        apply_hamerly_drift(self._ub, self._lb,
                            centroid_drift(old_C, new_C),
                            self._assignments)

    # -- one iteration ------------------------------------------------------------

    def iterate(self, X: np.ndarray, C: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        plan = self.plan
        n, d = X.shape
        k = C.shape[0]
        item = self._itemsize
        widest_k = max(hi - lo for lo, hi in plan.centroid_slices)
        widest_d = max(hi - lo for lo, hi in plan.dim_slices)

        # ---- Assign phase with bound filtering ----
        if self._ub is None:
            self._full_assign_with_bounds(X, C)
            candidate_mask = np.ones(n, dtype=bool)
        else:
            self._drift_bounds(self._prev_C, C)
            candidate_mask = self._candidate_mask(C)
            self._reassign_candidates(X, C, candidate_mask)
        assignments = self._assignments.copy()
        self.candidates_per_iteration.append(int(candidate_mask.sum()))

        # ---- per-group accumulation (fans out over the execution engine) ----
        # Module-level accumulate-only tasks: labels are already known, so
        # each block just sums its samples per centroid.  The labels array
        # is fresh each iteration, and share() rewrites its segment in
        # place for the process engine's workers.
        x_ref = self.engine.share("X", X)
        labels_ref = self.engine.share("labels", assignments)
        tasks = [AccumulateTask(x_ref, labels_ref, lo, hi, k)
                 for lo, hi in plan.sample_blocks]

        # The merge runs under the executor's reduction topology (schedule
        # a pure function of the group count, so engine-independent); the
        # per-group partials also feed the accumulate cost model below.
        merged, partials = self.engine.map_reduce(
            accumulate_block, tasks, topology=self.reduce,
            return_partials=True)
        global_sums, global_counts = merged.sums, merged.counts

        # ---- cost model, scaled by surviving candidates (fixed order) ----
        if self.model_costs:
            dma_times: List[float] = []
            compute_times: List[float] = []
            minloc_times: List[float] = []
            accumulate_times: List[float] = []
            for g, members in enumerate(plan.cg_groups):
                lo, hi = plan.sample_blocks[g]
                b = hi - lo
                n_cand = int(candidate_mask[lo:hi].sum())
                # The full block still streams (Update needs every sample);
                # bound state (2 scalars/sample) rides along.
                cg_bytes = (b * (d + 2)) * item \
                    + self.machine.cpes_per_cg \
                    * plan.cent_traffic_bytes_per_cpe()
                dma_times.append(self._dma.transfer_time(cg_bytes))
                # Only candidates pay the distance kernel; skipped samples
                # pay one bound comparison each (2 flops, negligible but
                # charged).
                compute_times.append(self.compute.time_for_flops(
                    distance_flops(n_cand, widest_k, widest_d)
                    + 2.0 * (b - n_cand), n_cpes=1))
                # Only candidates enter the MINLOC chain.
                minloc_times.append(
                    self._group_comms[g].allreduce_time(n_cand * 16))
                counts = partials[g].counts
                slice_loads = [
                    int(counts[s_lo:s_hi].sum()) * widest_d
                    for s_lo, s_hi in plan.centroid_slices
                ]
                accumulate_times.append(self.compute.time_for_flops(
                    max(slice_loads), n_cpes=1))
            self.charge_stream_phases("l3b.assign", dma_times, compute_times)
            max_cand_block = max(
                int(candidate_mask[lo:hi].sum())
                for lo, hi in plan.sample_blocks
            )
            self.ledger.charge("regcomm", "l3b.assign.dim_reduce",
                               self._regcomm.allreduce_time(
                                   max_cand_block * widest_k * item))
            self.ledger.charge_parallel("network", "l3b.assign.minloc",
                                        minloc_times)
            self.ledger.charge_parallel("compute", "l3b.update.accumulate",
                                        accumulate_times)

        # ---- Update phase (identical to the unbounded executor) ----
        # The cross-group merge already ran inside map_reduce; here each
        # slice's modelled allreduce is priced (allreduce_time fires the
        # same fault-injection probe as the data-carrying collective did).
        if plan.n_groups > 1:
            member_times: List[float] = []
            for j, (lo_k, hi_k) in enumerate(plan.centroid_slices):
                if self.model_costs:
                    comm = self._member_comms[j]
                    payload = ((hi_k - lo_k) * d + (hi_k - lo_k)) * item
                    member_times.append(comm.allreduce_time(payload))
            if self.model_costs:
                self.ledger.charge_parallel(
                    "network", "l3b.update.inter_group_allreduce",
                    member_times)

        if self.model_costs:
            self.ledger.charge("compute", "l3b.update.divide",
                               self.compute.time_for_flops(
                                   widest_k * widest_d, n_cpes=1))
        # No exact winning distances here — the Hamerly upper bounds are
        # drifted bounds, not distances — so reseed_farthest recomputes them
        # on the (rare) empty-cluster iteration.
        new_C = self.update_step(global_sums, global_counts, C, X=X)
        self._prev_C = C.copy()
        return assignments, new_C


def run_level3_bounded(X: np.ndarray, centroids: np.ndarray,
                       machine: Machine, max_iter: int = 100,
                       tol: float = 0.0, **executor_kwargs: object) -> KMeansResult:
    """Convenience wrapper: bounded Level-3 run."""
    executor = Level3BoundedExecutor(machine, **executor_kwargs)
    return executor.run(X, centroids, max_iter=max_iter, tol=tol)
