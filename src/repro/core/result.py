"""Result containers for k-means runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..runtime.faults import FaultEvent
from ..runtime.ledger import TimeLedger
from ..runtime.supervisor import HostEvent


@dataclass(frozen=True)
class IterationStats:
    """Telemetry for one Lloyd iteration."""

    iteration: int
    #: O(C) evaluated with the assignments computed this iteration.
    inertia: float
    #: Largest per-centroid L2 movement produced by the Update step.
    centroid_shift: float
    #: Number of samples that changed cluster this iteration.
    n_reassigned: int
    #: Modelled seconds charged to this iteration (0.0 for the serial baseline).
    modelled_seconds: float = 0.0


@dataclass
class KMeansResult:
    """Outcome of a k-means run (any level).

    Attributes
    ----------
    centroids:
        Final (k, d) centroid matrix.
    assignments:
        Final (n,) nearest-centroid index per sample.
    inertia:
        Final objective O(C) — mean squared distance to assigned centroid.
    n_iter:
        Iterations executed.
    converged:
        True if the centroid shift dropped to ``tol`` before ``max_iter``.
    history:
        Per-iteration telemetry.
    ledger:
        The simulator's time ledger (None for the serial baseline and for
        pure-numerics runs with ``model_costs=False``).
    level:
        Which partition level produced the result (0 = serial).
    fault_events:
        Every injected fault that fired during the run and how it was
        handled (empty when no fault plan was attached).
    host_events:
        Host-side occurrences recorded by the run supervisor — task
        retries, timeouts, quarantines, chaos firings, slow iterations,
        checkpoint resumes (empty when nothing noteworthy happened on the
        host).  Mirrors ``fault_events`` for the real machine running the
        numerics.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iter: int
    converged: bool
    history: List[IterationStats] = field(default_factory=list)
    ledger: Optional[TimeLedger] = None
    level: int = 0
    fault_events: List[FaultEvent] = field(default_factory=list)
    host_events: List[HostEvent] = field(default_factory=list)

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def d(self) -> int:
        return int(self.centroids.shape[1])

    @property
    def n(self) -> int:
        return int(self.assignments.shape[0])

    def mean_iteration_seconds(self) -> float:
        """Mean modelled one-iteration completion time (paper's metric).

        Returns 0.0 when no ledger was attached (serial baseline).
        """
        if self.ledger is None or self.ledger.n_iterations == 0:
            return 0.0
        return self.ledger.mean_iteration_time()

    def summary(self) -> str:
        """One-line human-readable description."""
        t = self.mean_iteration_seconds()
        timing = f", {t:.6f} s/iter (modelled)" if t else ""
        return (
            f"level {self.level} k-means: n={self.n} k={self.k} d={self.d}, "
            f"{self.n_iter} iter, inertia={self.inertia:.6g}, "
            f"converged={self.converged}{timing}"
        )
