"""Level 3 executor — dataflow + centroid + dimension (nkd) partition.

The paper's contribution (Algorithm 3).  One core group becomes the basic
computing unit: a sample's d dimensions are spread over the CG's 64 CPEs,
``m'group`` CGs form a *CG group* that collectively holds the k centroids
(one contiguous centroid slice per member CG, dimension-sliced the same way
as the samples), and the dataflow is split over CG groups.

Per iteration and sample block:

1. every CG of a group streams the block (dimension-sliced over its CPEs),
2. each CPE computes partial squared distances over its dim slice for the
   CG's centroid slice; a register-communication reduce over the mesh yields
   the CG's distances; a CG-local argmin gives the slice winner a(i)',
3. an MPI MINLOC over the group's CGs gives the global a(i),
4. each CG accumulates sums/counts for its own centroid slice,
5. slice owners AllReduce across CG groups and divide.

Because d lives on the CPE axis and k on the CG axis, ``k*d`` is bounded
only by ``m * LDM`` — the whole machine's scratchpad (constraint C1'') —
which is what lets k and d scale independently.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..machine.machine import Machine
from ..runtime.compute import distance_flops
from ..runtime.dma import DMAEngine
from ..runtime.mpi import SimComm
from ..runtime.reduce import scatter_labels
from ..runtime.regcomm import RegisterComm
from .block_tasks import (
    FusedAssignTask,
    StrictL3Task,
    fused_assign_block,
    kernel_token,
    strict_l3_assign,
    strict_l3_block,
)
from .executor_base import LevelExecutor
from .partition import Level3Plan, plan_level3
from .result import KMeansResult


class Level3Executor(LevelExecutor):
    """Simulated execution of the nkd-partition algorithm."""

    level = 3

    def __init__(self, machine: Machine, plan: Optional[Level3Plan] = None,
                 mprime_group: Optional[int] = None,
                 supernode_aware: bool = True, streaming: bool = False,
                 **kwargs) -> None:
        super().__init__(machine, **kwargs)
        self._plan = plan
        self._mprime_request = mprime_group
        self._supernode_aware = supernode_aware
        self._streaming = bool(streaming)
        self._itemsize = 8
        self._regcomm = RegisterComm(machine.spec.processor.cg, self.ledger,
                                     injector=self.injector)
        self._dma = DMAEngine(machine.spec.processor.cg, self.ledger,
                              injector=self.injector)
        #: one communicator per CG group (for the MINLOC step)
        self._group_comms: List[SimComm] = []
        #: one communicator per member position (for the update AllReduce)
        self._member_comms: List[SimComm] = []

    @property
    def plan(self) -> Level3Plan:
        if self._plan is None:
            raise RuntimeError("executor has not been set up yet")
        return self._plan

    # -- setup ---------------------------------------------------------------

    def setup(self, X: np.ndarray, C: np.ndarray) -> None:
        n, d = X.shape
        k = C.shape[0]
        if self._plan is None:
            self._plan = plan_level3(
                self.machine, n, k, d,
                mprime_group=self._mprime_request,
                supernode_aware=self._supernode_aware,
                streaming=self._streaming,
                dtype=X.dtype,
            )
        plan = self._plan
        self._itemsize = np.dtype(plan.dtype).itemsize

        self._group_comms = [
            SimComm(self.machine, members, self.ledger,
                    self.collective_algorithm, injector=self.injector)
            for members in plan.cg_groups
        ]
        self._member_comms = [
            SimComm(self.machine,
                    [plan.cg_groups[g][j] for g in range(plan.n_groups)],
                    self.ledger, self.collective_algorithm,
                    injector=self.injector)
            for j in range(plan.mprime_group)
        ]
        # Initial distribution of centroid slices to every CG (epoch 0).
        if self.model_costs:
            widest = max(hi - lo for lo, hi in plan.centroid_slices)
            self.ledger.charge(
                "network", "l3.setup.scatter_centroids",
                self._member_comms[0].bcast_time(widest * d * self._itemsize),
            )

    # -- assignment under the partition ------------------------------------------

    def _assign_block(self, block: np.ndarray, C: np.ndarray) -> np.ndarray:
        """Global a(i) for one CG group's block.

        Strict mode walks the real dataflow — per-CPE dim-slice partial
        distances, mesh reduce, CG-local argmin, MINLOC across member CGs —
        and must agree with the fast vectorised path (the fidelity tests
        compare the two).
        """
        if not self.strict_cpe:
            return self.kernel.assign(block, C)
        return self._strict_assign_block(block, C)[0]

    def _strict_assign_block(self, block: np.ndarray, C: np.ndarray
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """Strict dataflow winner (index, squared distance) per sample.

        The math lives in :func:`repro.core.block_tasks.strict_l3_assign`
        (module-level so the process engine can ship it inside tasks);
        this method binds the executor's plan.
        """
        plan = self.plan
        return strict_l3_assign(block, C, plan.centroid_slices,
                                plan.dim_slices)

    # -- one iteration ------------------------------------------------------------

    def iterate(self, X: np.ndarray, C: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        plan = self.plan
        n, d = X.shape
        k = C.shape[0]
        item = self._itemsize
        widest_k = max(hi - lo for lo, hi in plan.centroid_slices)
        widest_d = max(hi - lo for lo, hi in plan.dim_slices)

        assignments = np.empty(n, dtype=np.int64)
        best_d2 = np.empty(n, dtype=X.dtype)

        # ---- Assign phase (CG groups fully parallel) ----
        # Module-level block tasks (picklable for the process engine;
        # operands travel by share()) return compact partials that merge
        # in fixed group order below, so the result is engine-independent;
        # labels scatter back in fixed group order.
        pruned = not self.strict_cpe and self.kernel.name == "pruned"
        if pruned:
            # Same block boundaries and topology; the tasks additionally
            # carry the per-sample bound state (see executor_base).
            merged, partials = self._pruned_map_reduce(
                X, C, plan.sample_blocks)
        else:
            x_ref = self.engine.share("X", X)
            c_ref = self.engine.share("C", C)
            if self.strict_cpe:
                tasks: List[object] = [
                    StrictL3Task(x_ref, c_ref, lo, hi, k,
                                 plan.centroid_slices, plan.dim_slices)
                    for lo, hi in plan.sample_blocks]
                block_fn = strict_l3_block
            else:
                token = kernel_token(self.kernel)
                tasks = [FusedAssignTask(x_ref, c_ref, lo, hi, token)
                         for lo, hi in plan.sample_blocks]
                block_fn = fused_assign_block
            # The merge runs under the executor's reduction topology
            # (schedule a pure function of the group count, so
            # engine-independent); the per-group partials also feed the
            # accumulate cost model below.
            merged, partials = self.engine.map_reduce(
                block_fn, tasks, topology=self.reduce, return_partials=True)
        global_sums, global_counts = merged.sums, merged.counts
        scatter_labels(partials, assignments, best_d2)
        self._iter_inertia = float(best_d2.sum() / n)

        # ---- cost model (fixed group order, independent of the engine) ----
        if self.model_costs:
            dma_times: List[float] = []
            compute_times: List[float] = []
            minloc_times: List[float] = []
            accumulate_times: List[float] = []
            for g, members in enumerate(plan.cg_groups):
                lo, hi = plan.sample_blocks[g]
                b = hi - lo
                # Every member CG streams the whole block across its CPEs
                # plus its centroid slice traffic (the n*d*m'group/m
                # amplification of T''read; re-stream traffic when not fully
                # resident).
                cg_bytes = b * d * item \
                    + self.machine.cpes_per_cg \
                    * plan.cent_traffic_bytes_per_cpe()
                dma_times.append(self._dma.transfer_time(cg_bytes))
                # Each CPE covers (its dim slice) x (the CG's centroid
                # slice).
                if pruned:
                    # The group's actual evaluations split over the member
                    # CGs' centroid slices and each CG's dimension slices;
                    # each CPE pays its widest share plus 2 flops/sample
                    # of bound tests.  DMA is unchanged: the block still
                    # streams in full for the Update accumulation.
                    flops = (3.0 * partials[g].n_dist * widest_d
                             * widest_k / k + 2.0 * b)
                else:
                    flops = float(distance_flops(b, widest_k, widest_d))
                compute_times.append(self.compute.time_for_flops(
                    flops, n_cpes=1))
                # MINLOC across the group's CGs: (distance, index) per
                # sample.
                minloc_times.append(
                    self._group_comms[g].allreduce_time(b * 16))
                # Accumulation is dimension-parallel over the CG's CPEs; the
                # critical member holds the most-assigned centroid slice.
                counts = partials[g].counts
                slice_loads = [
                    int(counts[s_lo:s_hi].sum()) * widest_d
                    for s_lo, s_hi in plan.centroid_slices
                ]
                accumulate_times.append(self.compute.time_for_flops(
                    max(slice_loads), n_cpes=1))
            self.charge_stream_phases("l3.assign", dma_times, compute_times)
            # Partial-distance reduce across the mesh (dim slices -> CG
            # total).
            max_block = max(hi - lo for lo, hi in plan.sample_blocks)
            self.ledger.charge("regcomm", "l3.assign.dim_reduce",
                               self._regcomm.allreduce_time(
                                   max_block * widest_k * item))
            self.ledger.charge_parallel("network", "l3.assign.minloc",
                                        minloc_times)
            self.ledger.charge_parallel("compute", "l3.update.accumulate",
                                        accumulate_times)

        # ---- Update phase: AllReduce per centroid slice across CG groups ----
        # The cross-group merge already ran inside map_reduce; here each
        # slice's modelled allreduce is priced (allreduce_time fires the
        # same fault-injection probe as the data-carrying collective did).
        if plan.n_groups > 1:
            member_times: List[float] = []
            for j, (lo_k, hi_k) in enumerate(plan.centroid_slices):
                if self.model_costs:
                    comm = self._member_comms[j]
                    payload = ((hi_k - lo_k) * d + (hi_k - lo_k)) * item
                    member_times.append(comm.allreduce_time(payload))
            # The m'group slice AllReduces proceed concurrently (disjoint
            # rank sets); the slowest member position is the critical path.
            if self.model_costs:
                self.ledger.charge_parallel(
                    "network", "l3.update.inter_group_allreduce",
                    member_times)

        # Divide: dimension-parallel across each CG's CPEs.
        if self.model_costs:
            self.ledger.charge("compute", "l3.update.divide",
                               self.compute.time_for_flops(
                                   widest_k * widest_d, n_cpes=1))
        new_C = self.update_step(global_sums, global_counts, C,
                                 X=X, best_d2=best_d2)
        if pruned:
            # Last act of the iteration — after every fault-prone charge —
            # so a faulted iteration never half-commits bound state.
            self._commit_pruned_state(C, assignments, best_d2, partials)
        return assignments, new_C


def run_level3(X: np.ndarray, centroids: np.ndarray, machine: Machine,
               mprime_group: Optional[int] = None, max_iter: int = 100,
               tol: float = 0.0, supernode_aware: bool = True,
               **executor_kwargs: object) -> KMeansResult:
    """Convenience wrapper: plan, execute, and return the result."""
    executor = Level3Executor(machine, mprime_group=mprime_group,
                              supernode_aware=supernode_aware,
                              **executor_kwargs)
    return executor.run(X, centroids, max_iter=max_iter, tol=tol)
