"""Module-level block tasks — the picklable unit of work for every engine.

The executors used to hand closures to ``engine.map``: convenient
in-process, but a closure cannot cross a process boundary (pickle refuses
it), and writing output slices from inside a task only works when the task
shares the caller's address space.  This module replaces the idiom with
small picklable task records plus module-level functions over them:

* operands arrive as :data:`~repro.runtime.shm.ArrayLike` — a plain
  ndarray under the in-process engines, an
  :class:`~repro.runtime.shm.ArrayRef` into shared memory under the
  process engine — and every task resolves them through
  :func:`~repro.runtime.shm.as_ndarray`, so the task body is
  engine-agnostic;
* results come back as :class:`~repro.runtime.reduce.BlockPartial` —
  compact ``(sums, counts, labels)`` payloads merged under the reduction
  topology, with the labels scattered parent-side by
  :func:`~repro.runtime.reduce.scatter_labels` in fixed block order;
* kernels travel by *registry name* (:func:`kernel_token`): the gemm
  backend carries a ``threading.local`` scratch buffer that cannot
  pickle, so workers re-resolve the name against a per-process cache
  instead.

Reprolint rule E404 enforces the discipline statically: callables passed
to ``engine.map``/``map_reduce`` must be module-level, like the
``*_block`` functions here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.reduce import BlockPartial, PrunedPartial
from ..runtime.shm import ArrayLike, as_ndarray
from ._common import accumulate, squared_distances
from .bounds import BlockBounds, centroid_drift, centroid_separation
from .kernels import (
    KERNELS,
    KernelBackend,
    KernelLike,
    PrunedKernel,
    resolve_kernel,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..runtime.engine import ExecutionEngine

__all__ = [
    "AccumulateTask",
    "FusedAssignTask",
    "PrunedAssignTask",
    "StrictL2Task",
    "StrictL3Task",
    "accumulate_block",
    "build_pruned_tasks",
    "fused_assign_block",
    "kernel_token",
    "pruned_assign_block",
    "strict_l2_assign",
    "strict_l3_assign",
    "strict_l2_block",
    "strict_l3_block",
]

#: Per-process cache of kernel backends resolved from registry names, so a
#: worker builds (and keeps its scratch buffers in) one backend per name
#: rather than one per task.
_KERNEL_CACHE: Dict[str, KernelBackend] = {}


def kernel_token(backend: KernelBackend) -> KernelLike:
    """The picklable form of a kernel backend for shipping inside tasks.

    Registry-named backends travel as their name (a few bytes, and the
    worker's cached instance keeps its scratch warm across tasks); an
    unregistered custom instance passes through as-is — it works on the
    in-process engines and fails loudly at pickle time on the process
    engine, which is the honest outcome.
    """
    return backend.name if backend.name in KERNELS else backend


def _kernel(token: KernelLike) -> KernelBackend:
    if isinstance(token, KernelBackend):
        return token
    backend = _KERNEL_CACHE.get(token)
    if backend is None:
        backend = resolve_kernel(token)
        _KERNEL_CACHE[token] = backend
    return backend


class FusedAssignTask:
    """One block of the fused Assign+Accumulate sweep (lloyd / L1 / L2 / L3).

    ``chunk_elements=None`` uses the kernel's default chunk policy — the
    executors' path, where the block *is* one planned unit of work;
    :func:`~repro.core.lloyd.lloyd` passes its explicit bound through.
    """

    __slots__ = ("x", "c", "lo", "hi", "kernel", "chunk_elements")

    def __init__(self, x: ArrayLike, c: ArrayLike, lo: int, hi: int,
                 kernel: KernelLike, chunk_elements: Optional[int] = None
                 ) -> None:
        self.x = x
        self.c = c
        self.lo = int(lo)
        self.hi = int(hi)
        self.kernel = kernel
        self.chunk_elements = chunk_elements


def fused_assign_block(task: FusedAssignTask) -> BlockPartial:
    """Fused assign+accumulate over one sample block; the hot-path task."""
    X = as_ndarray(task.x)
    C = as_ndarray(task.c)
    backend = _kernel(task.kernel)
    block = X[task.lo:task.hi]
    if task.chunk_elements is None:
        idx, best, sums, counts = backend.assign_accumulate(block, C)
    else:
        idx, best, sums, counts = backend.assign_accumulate(
            block, C, task.chunk_elements)
    return BlockPartial(sums, counts, task.lo, task.hi, idx, best)


class PrunedAssignTask:
    """One block of the bounds-carrying pruned sweep.

    The carried per-sample state (``labels``/``d2``/``lb``) arrives as
    *full-length* shared operands — the task slices its own ``[lo, hi)``
    window, exactly like the samples — so the process engine ships one
    shared-memory segment per array instead of per-block pickles.  The
    k-sized drift and separation vectors are small enough to travel
    inline.  ``labels is None`` marks an establishment sweep (no valid
    carried state: first iteration, post-restore, post-replan).
    """

    __slots__ = ("x", "c", "labels", "d2", "lb", "drift", "s",
                 "lo", "hi", "kernel", "chunk_elements")

    def __init__(self, x: ArrayLike, c: ArrayLike,
                 labels: Optional[ArrayLike], d2: Optional[ArrayLike],
                 lb: Optional[ArrayLike], drift: Optional[np.ndarray],
                 s: Optional[np.ndarray], lo: int, hi: int,
                 kernel: KernelLike,
                 chunk_elements: Optional[int] = None) -> None:
        self.x = x
        self.c = c
        self.labels = labels
        self.d2 = d2
        self.lb = lb
        self.drift = drift
        self.s = s
        self.lo = int(lo)
        self.hi = int(hi)
        self.kernel = kernel
        self.chunk_elements = chunk_elements


def pruned_assign_block(task: PrunedAssignTask) -> PrunedPartial:
    """Bounded assign+accumulate over one sample block.

    Pure: the carried state is read-only (the kernel copies before
    updating), so an engine-level retry re-runs from unpoisoned inputs.
    """
    X = as_ndarray(task.x)
    C = as_ndarray(task.c)
    backend = _kernel(task.kernel)
    if not isinstance(backend, PrunedKernel):
        raise TypeError(
            f"PrunedAssignTask needs the pruned kernel, got "
            f"{type(backend).__name__}"
        )
    block = X[task.lo:task.hi]
    kwargs: Dict[str, int] = {}
    if task.chunk_elements is not None:
        kwargs["chunk_elements"] = task.chunk_elements
    if task.labels is None:
        idx, best, sums, counts, lb, n_dist = backend.establish(
            block, C, **kwargs)
    else:
        labels = as_ndarray(task.labels)[task.lo:task.hi]
        d2 = as_ndarray(task.d2)[task.lo:task.hi]
        lb_in = as_ndarray(task.lb)[task.lo:task.hi]
        idx, best, sums, counts, lb, n_dist = (
            backend.assign_accumulate_pruned(
                block, C, labels, d2, lb_in, task.drift, task.s, **kwargs))
    return PrunedPartial(sums, counts, task.lo, task.hi, idx, best,
                         lb=lb, n_dist=n_dist)


def build_pruned_tasks(engine: "ExecutionEngine", backend: KernelBackend,
                       X: np.ndarray,
                       C: np.ndarray, blocks: Sequence[Tuple[int, int]],
                       bounds: BlockBounds,
                       chunk_elements: Optional[int] = None
                       ) -> List["PrunedAssignTask"]:
    """The per-block task list of one pruned iteration.

    Shares the operands (and, when the carried state is valid, the three
    full-length bound arrays) through the engine, computes the drift
    against the bounds' anchor and the centroid half-separations once
    host-side, and returns one :class:`PrunedAssignTask` per block — the
    same block boundaries the unpruned path would use, so the task-id
    stream (and with it every chaos/fault replay) is unchanged.
    """
    x_ref = engine.share("X", X)
    c_ref = engine.share("C", C)
    token = kernel_token(backend)
    if not bounds.valid:
        return [PrunedAssignTask(x_ref, c_ref, None, None, None, None, None,
                                 lo, hi, token, chunk_elements)
                for lo, hi in blocks]
    drift = centroid_drift(bounds.anchor, C)
    _, s = centroid_separation(C)
    labels_ref = engine.share("pruned_labels", bounds.labels)
    d2_ref = engine.share("pruned_d2", bounds.d2)
    lb_ref = engine.share("pruned_lb", bounds.lb)
    return [PrunedAssignTask(x_ref, c_ref, labels_ref, d2_ref, lb_ref,
                             drift, s, lo, hi, token, chunk_elements)
            for lo, hi in blocks]


def strict_l2_assign(block: np.ndarray, C: np.ndarray,
                     centroid_slices: Sequence[Tuple[int, int]]
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Strict Level-2 dataflow winner (index, squared distance) per sample.

    Each member CPE computes distances over its centroid slice and a
    slice-local argmin (Algorithm 2 line 9's a(i)'), then the MINLOC
    reduction (line 10) combines the mgroup partial winners.
    """
    b = block.shape[0]
    best_val = np.full(b, np.inf, dtype=np.float64)
    best_idx = np.zeros(b, dtype=np.int64)
    for lo, hi in centroid_slices:
        if lo == hi:
            continue
        d2 = squared_distances(block, C[lo:hi])
        local = np.argmin(d2, axis=1)
        vals = d2[np.arange(b), local]
        # Strict less-than keeps the lowest global index on ties, the
        # same rule np.argmin applies (slices are visited in index order).
        better = vals < best_val
        best_val[better] = vals[better]
        best_idx[better] = lo + local[better]
    return best_idx, best_val


def strict_l3_assign(block: np.ndarray, C: np.ndarray,
                     centroid_slices: Sequence[Tuple[int, int]],
                     dim_slices: Sequence[Tuple[int, int]]
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Strict Level-3 dataflow winner (index, squared distance) per sample.

    Per-CPE partial distances over each dimension slice, the register-
    communication reduce (a plain sum over partials), a CG-local argmin,
    then the MINLOC over the group's member CGs.
    """
    b = block.shape[0]
    best_val = np.full(b, np.inf, dtype=np.float64)
    best_idx = np.zeros(b, dtype=np.int64)
    for lo_k, hi_k in centroid_slices:
        if lo_k == hi_k:
            continue
        slice_C = C[lo_k:hi_k]
        d2 = np.zeros((b, hi_k - lo_k), dtype=np.float64)
        for lo_d, hi_d in dim_slices:
            if lo_d == hi_d:
                continue
            diff = block[:, lo_d:hi_d, None] - slice_C.T[None, lo_d:hi_d, :]
            d2 += np.einsum("bdc,bdc->bc", diff, diff)
        local = np.argmin(d2, axis=1)
        vals = d2[np.arange(b), local]
        better = vals < best_val
        best_val[better] = vals[better]
        best_idx[better] = lo_k + local[better]
    return best_idx, best_val


class StrictL2Task:
    """One Level-2 group's block under the strict-CPE dataflow."""

    __slots__ = ("x", "c", "lo", "hi", "k", "centroid_slices")

    def __init__(self, x: ArrayLike, c: ArrayLike, lo: int, hi: int,
                 k: int, centroid_slices: Sequence[Tuple[int, int]]) -> None:
        self.x = x
        self.c = c
        self.lo = int(lo)
        self.hi = int(hi)
        self.k = int(k)
        self.centroid_slices = tuple(centroid_slices)


def strict_l2_block(task: StrictL2Task) -> BlockPartial:
    X = as_ndarray(task.x)
    C = as_ndarray(task.c)
    block = X[task.lo:task.hi]
    idx, best = strict_l2_assign(block, C, task.centroid_slices)
    sums, counts = accumulate(block, idx, task.k)
    return BlockPartial(sums, counts, task.lo, task.hi, idx, best)


class StrictL3Task:
    """One Level-3 CG group's block under the strict-CPE dataflow."""

    __slots__ = ("x", "c", "lo", "hi", "k", "centroid_slices", "dim_slices")

    def __init__(self, x: ArrayLike, c: ArrayLike, lo: int, hi: int,
                 k: int, centroid_slices: Sequence[Tuple[int, int]],
                 dim_slices: Sequence[Tuple[int, int]]) -> None:
        self.x = x
        self.c = c
        self.lo = int(lo)
        self.hi = int(hi)
        self.k = int(k)
        self.centroid_slices = tuple(centroid_slices)
        self.dim_slices = tuple(dim_slices)


def strict_l3_block(task: StrictL3Task) -> BlockPartial:
    X = as_ndarray(task.x)
    C = as_ndarray(task.c)
    block = X[task.lo:task.hi]
    idx, best = strict_l3_assign(block, C, task.centroid_slices,
                                 task.dim_slices)
    sums, counts = accumulate(block, idx, task.k)
    return BlockPartial(sums, counts, task.lo, task.hi, idx, best)


class AccumulateTask:
    """Accumulate-only block task (the bounded L3 path: labels are given)."""

    __slots__ = ("x", "labels", "lo", "hi", "k")

    def __init__(self, x: ArrayLike, labels: ArrayLike, lo: int, hi: int,
                 k: int) -> None:
        self.x = x
        self.labels = labels
        self.lo = int(lo)
        self.hi = int(hi)
        self.k = int(k)


def accumulate_block(task: AccumulateTask) -> BlockPartial:
    X = as_ndarray(task.x)
    labels = as_ndarray(task.labels)
    sums, counts = accumulate(X[task.lo:task.hi],
                              labels[task.lo:task.hi], task.k)
    return BlockPartial(sums, counts, task.lo, task.hi)
