"""Recovery policies: what the convergence loop does when a fault fires.

The executor's iteration driver catches every
:class:`~repro.errors.FaultError` and asks its policy for a
:class:`RecoveryAction`:

* ``retry``     — re-run the failed operation after a backoff (transient
  faults only; CG failures are permanent and cannot be retried away),
* ``replan``    — drop the failed core groups, re-plan the partition on the
  shrunken machine, and resume from the last checkpoint,
* ``fail_fast`` — let the fault propagate to the caller.

A fourth action, ``rollback``, is issued by the ``replan`` policy for
:class:`~repro.errors.NumericalFaultError`: the machine is healthy — the
*numbers* went bad (a NaN leaked into the centroids, e.g. from host-side
corruption at the engine seam) — so the run restores the last checkpoint
without excising any core group or re-planning the partition.

Policies are pure deciders: they never touch the ledger or the machine.  The
executor performs the chosen action and charges its modelled time (backoff,
checkpoint restore) to the ``recovery`` category, so the same policy object
can be shared across runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Union

from ..errors import (
    CGFailedError,
    ConfigurationError,
    FaultError,
    NumericalFaultError,
)

#: Names accepted by :func:`resolve_recovery` (and the CLI's ``--recovery``).
RECOVERY_POLICIES = ("retry", "replan", "fail_fast")


@dataclass(frozen=True)
class RecoveryAction:
    """The policy's verdict for one fault.

    ``kind`` is ``"retry"`` (re-run the iteration after ``delay`` modelled
    seconds of backoff), ``"replan"`` (shrink the machine and restart from
    the last checkpoint), ``"rollback"`` (restore the last checkpoint on
    the *unchanged* machine — numerical faults), or ``"raise"`` (propagate
    the fault).
    """

    kind: str
    delay: float = 0.0


class RecoveryPolicy(ABC):
    """Decides how the executor reacts to an injected fault."""

    #: Name reported in results and accepted by :func:`resolve_recovery`.
    name: str = ""

    @abstractmethod
    def decide(self, fault: FaultError, attempt: int) -> RecoveryAction:
        """Choose an action for ``fault`` on retry ``attempt`` (1-based).

        ``attempt`` counts the faults caught in the *current* iteration, so
        a bounded-retry policy can give up once the same iteration keeps
        failing.
        """


class FailFastPolicy(RecoveryPolicy):
    """Propagate every fault to the caller — the default."""

    name = "fail_fast"

    def decide(self, fault: FaultError, attempt: int) -> RecoveryAction:
        return RecoveryAction("raise")


class RetryPolicy(RecoveryPolicy):
    """Bounded retries with exponential backoff for transient faults.

    Parameters
    ----------
    max_retries:
        Retries allowed per iteration before giving up.
    backoff:
        Modelled seconds of the first backoff delay.
    factor:
        Multiplier applied to the delay on each subsequent retry.
    """

    name = "retry"

    def __init__(self, max_retries: int = 3, backoff: float = 1e-3,
                 factor: float = 2.0) -> None:
        if max_retries < 1:
            raise ConfigurationError(
                f"max_retries must be >= 1, got {max_retries}"
            )
        if backoff < 0 or factor < 1.0:
            raise ConfigurationError(
                f"need backoff >= 0 and factor >= 1, "
                f"got backoff={backoff}, factor={factor}"
            )
        self.max_retries = max_retries
        self.backoff = backoff
        self.factor = factor

    def decide(self, fault: FaultError, attempt: int) -> RecoveryAction:
        if not fault.transient or attempt > self.max_retries:
            return RecoveryAction("raise")
        return RecoveryAction(
            "retry", delay=self.backoff * self.factor ** (attempt - 1)
        )


class ReplanPolicy(RetryPolicy):
    """Retry transients; survive CG failures by re-planning.

    A permanent :class:`~repro.errors.CGFailedError` triggers a replan —
    the failed CG is excised, the partition is re-planned on the survivors,
    and the run resumes from the last checkpoint.  A
    :class:`~repro.errors.NumericalFaultError` triggers a rollback — the
    machine is fine, so only the state is restored from the last
    checkpoint (bounded by ``max_retries`` per iteration: persistently
    NaN-producing state propagates rather than looping forever).  Other
    transient faults fall back to the bounded-retry behaviour inherited
    from :class:`RetryPolicy`.
    """

    name = "replan"

    def decide(self, fault: FaultError, attempt: int) -> RecoveryAction:
        if isinstance(fault, CGFailedError):
            return RecoveryAction("replan")
        if isinstance(fault, NumericalFaultError):
            if attempt > self.max_retries:
                return RecoveryAction("raise")
            return RecoveryAction("rollback")
        return super().decide(fault, attempt)


RecoveryLike = Union[RecoveryPolicy, str]


def resolve_recovery(policy: RecoveryLike) -> RecoveryPolicy:
    """Accept a policy instance or one of :data:`RECOVERY_POLICIES`."""
    if isinstance(policy, RecoveryPolicy):
        return policy
    if policy == "fail_fast":
        return FailFastPolicy()
    if policy == "retry":
        return RetryPolicy()
    if policy == "replan":
        return ReplanPolicy()
    raise ConfigurationError(
        f"unknown recovery policy {policy!r}; "
        f"expected one of {RECOVERY_POLICIES} or a RecoveryPolicy instance"
    )
