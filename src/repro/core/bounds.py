"""Shared triangle-inequality bound mathematics for exact k-means pruning.

Every bounds-accelerated path in the repo — the Elkan/Hamerly/Yinyang
baselines, the Hamerly-filtered :class:`~repro.core.level3_bounded.
Level3BoundedExecutor`, and the partitioned ``kernel="pruned"`` sweep —
relies on the same two facts:

* a centroid that moved by ``drift[j]`` changes any point's distance to it
  by at most ``drift[j]`` (triangle inequality), so upper/lower bounds on
  those distances stay valid when drifted by the movement;
* a point whose distance to its assigned centroid is below half the
  distance to the nearest *other* centroid (``s[j]``) provably cannot
  change assignment [Elkan 2003, Lemma 1].

The drift and separation vectors used to be computed in three nearly
identical copies across the baselines; this module is now the single
implementation, and the bound-drifting rules of each algorithm family are
named helpers so their (deliberately different) semantics stay visible at
the call sites.

:class:`BlockBounds` is the persistent state carrier of the pruned kernel
path: the per-sample labels, exact squared distances, and lower bounds of
the previous committed iteration, anchored to the exact centroid array
they were computed against.  The anchor is what makes invalidation
trivial and checkpoint-resume sound — see ``docs/invariants.md``
("Bounds invalidation").
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ._common import squared_distances

__all__ = [
    "BlockBounds",
    "apply_elkan_drift",
    "apply_hamerly_drift",
    "apply_yinyang_drift",
    "centroid_drift",
    "centroid_separation",
    "group_members_of",
]

#: A dense squared-distance routine ``(A, B) -> (len(A), len(B))`` — the
#: direct form by default; callers with a kernel backend pass its
#: ``pairwise_sq`` to keep their historical formulation bit-for-bit.
SqDistFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def centroid_drift(old_C: np.ndarray, new_C: np.ndarray) -> np.ndarray:
    """Per-centroid Euclidean movement ``|new_C[j] - old_C[j]|``.

    A centroid whose membership did not change between iterations gets a
    bit-identical mean and therefore a drift of exactly ``0.0`` — the
    pruned kernel leans on that to reuse stored exact distances verbatim.
    """
    return np.sqrt(np.maximum(((new_C - old_C) ** 2).sum(axis=1), 0.0))


def centroid_separation(C: np.ndarray, sq: Optional[SqDistFn] = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Inter-centroid distances ``cc`` (diagonal +inf) and half-minima ``s``.

    ``s[j]`` is half the distance from centroid j to its nearest other
    centroid: any point closer to c_j than ``s[j]`` provably keeps
    assignment j this iteration.  With a single centroid there is nothing
    to separate: ``s`` is all zeros and ``cc`` all +inf.
    """
    k = C.shape[0]
    if k <= 1:
        return np.full((k, k), np.inf), np.zeros(max(k, 1))
    d2 = squared_distances(C, C) if sq is None else sq(C, C)
    cc = np.sqrt(np.maximum(d2, 0.0))
    np.fill_diagonal(cc, np.inf)
    return cc, 0.5 * cc.min(axis=1)


def apply_hamerly_drift(ub: np.ndarray, lb: np.ndarray, drift: np.ndarray,
                        assignments: np.ndarray) -> None:
    """Hamerly's rule, in place: per-sample ub up, one global lb down.

    The single lower bound covers *every* non-assigned centroid, so it
    must retreat by the worst-case movement ``drift.max()``; the upper
    bound only tracks the assigned centroid's own drift.
    """
    ub += drift[assignments]
    if drift.shape[0] > 1:
        lb -= drift.max()


def apply_elkan_drift(ub: np.ndarray, lb: np.ndarray, drift: np.ndarray,
                      assignments: np.ndarray) -> np.ndarray:
    """Elkan's rule: ub in place, per-centroid lb matrix returned fresh.

    Elkan keeps one lower bound per (sample, centroid) pair, so each
    column retreats by its own centroid's drift (clamped at zero — a
    distance bound can never go negative).
    """
    ub += drift[assignments]
    return np.maximum(lb - drift[None, :], 0.0)


def apply_yinyang_drift(ub: np.ndarray, lb: np.ndarray, drift: np.ndarray,
                        assignments: np.ndarray,
                        group_members: Sequence[np.ndarray]) -> None:
    """Yinyang's rule, in place: per-group lb columns retreat together.

    Each group's lower bound covers only its member centroids, so it
    retreats by the worst movement *within the group* — tighter than
    Hamerly's global maximum, cheaper than Elkan's full matrix.
    """
    ub += drift[assignments]
    group_drift = np.array([
        drift[members].max() if members.size else 0.0
        for members in group_members
    ])
    lb -= group_drift[None, :]


class BlockBounds:
    """Persistent bound state of the ``kernel="pruned"`` sweep.

    One instance per run holds, for every sample, the committed state of
    the last successful iteration:

    ``labels``
        the assignment (int64),
    ``d2``
        the *exact* squared distance to the assigned centroid — computed
        by the row-independent winner routine, so it is bit-identical to
        what the unpruned gemm sweep reports,
    ``lb``
        a lower bound on the distance to the second-closest centroid,
    ``anchor``
        the exact centroid array the three arrays were computed against.

    The executors slice the arrays per partition block and ship them with
    the block tasks; per-iteration drift is always measured against
    ``anchor``, so the state stays sound no matter how the host-side loop
    got from there to the current centroids.  ``commit`` is called only at
    the very end of a successful iteration (after every fault-probing
    charge), which makes a retried iteration re-run from unpoisoned
    state; ``invalidate`` is called on every checkpoint restore, replan,
    and rollback — stale bounds against restored centroids would be
    unsound, so the next iteration re-establishes them from scratch
    (reprolint rule D107 enforces the discipline statically).
    """

    __slots__ = ("labels", "d2", "lb", "anchor")

    def __init__(self) -> None:
        self.labels: Optional[np.ndarray] = None
        self.d2: Optional[np.ndarray] = None
        self.lb: Optional[np.ndarray] = None
        self.anchor: Optional[np.ndarray] = None

    @property
    def valid(self) -> bool:
        """True when the state can prune the next iteration."""
        return self.anchor is not None

    def invalidate(self) -> None:
        """Drop all state; the next iteration runs a full establishment."""
        self.labels = None
        self.d2 = None
        self.lb = None
        self.anchor = None

    def commit(self, anchor_C: np.ndarray, labels: np.ndarray,
               d2: np.ndarray, lb: np.ndarray) -> None:
        """Adopt one iteration's outputs as the next iteration's state.

        ``anchor_C`` is copied (the caller's loop variable moves on);
        the per-sample arrays are adopted by reference — the callers hand
        over freshly scattered arrays they never mutate afterwards.
        """
        self.anchor = np.array(anchor_C, copy=True)
        self.labels = labels
        self.d2 = d2
        self.lb = lb


def group_members_of(groups: np.ndarray, n_groups: int) -> List[np.ndarray]:
    """Member-index arrays per group id — the Yinyang grouping layout."""
    return [np.flatnonzero(groups == g) for g in range(n_groups)]
