"""Pluggable compute kernels for the Assign step.

Every executor funnels its nearest-centroid arithmetic through a
:class:`KernelBackend`, decoupling *which distance formulation runs* from
*how the partition charges modelled cost*.  Three backends ship:

``naive``
    The direct ``sum((x - c)^2)`` form, chunked — numerically identical to
    what the dimension-sliced hardware dataflow computes and sums, so it is
    the reference for the fidelity/strict-CPE tests.

``gemm``
    The communication-avoiding blocked formulation
    ``|x|^2 - 2 X C^T + |c|^2``: one BLAS GEMM per sample block instead of
    an (n, k, d) subtraction temporary, with the centroid norms computed
    once per call and the (rows, k) distance block reused across chunks.
    For pure assignment the ``|x|^2`` term is a per-row constant and is
    dropped from the argmin entirely.

``pruned``
    The gemm formulation plus Hamerly-style triangle-inequality bounds
    carried across iterations (:class:`~repro.core.bounds.BlockBounds`):
    a point whose exact distance to its assigned centroid is provably
    below both the half-separation of that centroid and the drifted
    lower bound to the runner-up skips the k-wide sweep entirely, and
    only the surviving candidates pay the blocked GEMM.  Bit-identical
    to ``gemm`` — centroids, labels, and inertia — because every reported
    distance comes from the same row-independent winner routine and
    skipped points provably cannot change assignment.

Backends are selected with ``HierarchicalKMeans(..., kernel="gemm")`` (or
per-executor via ``Level3Executor(machine, kernel="gemm")``), with the
``REPRO_KERNEL`` environment variable as the default when no explicit
``kernel=`` is given, and produce identical assignments on non-degenerate
data; only the floating-point rounding of near-exact ties can differ
between formulations.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Optional, Tuple, Union

import numpy as np

from ..analysis.envvars import ENV_KERNEL, read_str
from ..errors import ConfigurationError
from ._common import (
    DEFAULT_CHUNK_ELEMENTS,
    accumulate,
    chunk_ranges,
    squared_distances,
    validate_data,
)

#: Names accepted by :func:`resolve_kernel`.
KERNELS = ("naive", "gemm", "pruned")

#: Environment variable consulted when no explicit ``kernel=`` is given.
KERNEL_ENV = ENV_KERNEL.name


class KernelBackend(ABC):
    """One distance formulation behind the Assign step.

    Subclasses implement the per-chunk primitives; the base class owns the
    chunking loop so every backend observes the same bounded working set
    (the in-memory analogue of streaming sample blocks through the LDM)
    and the same tie rule (np.argmin — lowest centroid index wins).
    """

    #: Registry name of the backend ("naive", "gemm", ...).
    name: str = ""

    # -- per-chunk primitives ----------------------------------------------------

    @abstractmethod
    def _prepare(self, C: np.ndarray, max_rows: int) -> object:
        """Per-call setup (centroid norms, scratch buffers); returns a context."""

    @abstractmethod
    def _argmin_block(self, block: np.ndarray, C: np.ndarray,
                      ctx: object) -> np.ndarray:
        """Nearest-centroid index for one sample block."""

    @abstractmethod
    def _sq_block(self, block: np.ndarray, C: np.ndarray,
                  ctx: object) -> np.ndarray:
        """Full (b, k) squared-distance block for one sample block."""

    def _argmin_best_block(self, block: np.ndarray, C: np.ndarray,
                           ctx: object) -> Tuple[np.ndarray, np.ndarray]:
        """Winning index plus its squared distance for one sample block.

        Must pick the winner exactly like :meth:`_argmin_block` — same
        formulation, same ties — so ``assign()`` and the sweeps behind
        ``assign_with_distances()`` / ``assign_accumulate()`` never
        disagree.  Backends whose argmin runs on a cheaper partial form
        override this to argmin that form and materialise the full
        distance for the winner only.
        """
        d2 = self._sq_block(block, C, ctx)
        local = np.argmin(d2, axis=1)
        return local, d2[np.arange(block.shape[0]), local]

    # -- chunk policy -------------------------------------------------------------

    def chunk_rows(self, n: int, k: int, d: int,
                   chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> int:
        """Sample rows per chunk so the transient working set stays bounded.

        The default assumes the largest per-chunk temporary is the
        (rows, k) distance block.  Backends whose intermediates scale
        differently (the naive form's (rows, k, d) subtraction temporary)
        override this — it is the single place the chunk shape is decided,
        so the fused and unfused sweeps always agree on boundaries.
        """
        return max(1, chunk_elements // max(k, 1))

    # -- public API ---------------------------------------------------------------

    def assign(self, X: np.ndarray, C: np.ndarray,
               chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> np.ndarray:
        """Nearest-centroid assignment for every sample (int64 indices)."""
        X, C = validate_data(X, C)
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        out = np.empty(n, dtype=np.int64)
        for lo, hi in chunk_ranges(n, rows):
            out[lo:hi] = self._argmin_block(X[lo:hi], C, ctx)
        return out

    def _sweep(self, X: np.ndarray, C: np.ndarray, chunk_elements: int
               ) -> Tuple[np.ndarray, np.ndarray]:
        """One chunked pass: winning index and squared distance per sample."""
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        idx = np.empty(n, dtype=np.int64)
        best = np.empty(n, dtype=X.dtype)
        for lo, hi in chunk_ranges(n, rows):
            local, best_block = self._argmin_best_block(X[lo:hi], C, ctx)
            idx[lo:hi] = local
            best[lo:hi] = best_block
        return idx, best

    def assign_with_distances(self, X: np.ndarray, C: np.ndarray,
                              chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """Assignments plus the squared distance to the winning centroid."""
        X, C = validate_data(X, C)
        return self._sweep(X, C, chunk_elements)

    def assign_accumulate(self, X: np.ndarray, C: np.ndarray,
                          chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray]:
        """Fused Assign+Accumulate: ``(assignments, best_d2, sums, counts)``.

        The executors' hot path.  One chunked sweep produces the winning
        index *and* its squared distance (the per-iteration inertia then
        costs a vector mean instead of a fresh ``X - C[assignments]``
        pass), followed by one bincount accumulation over the whole block.
        The accumulation deliberately runs over the full block rather than
        per chunk so the sums are bit-identical to the unfused
        ``assign_with_distances`` + ``accumulate`` pair — the property the
        engine-parity tests and fault replays rely on.
        """
        X, C = validate_data(X, C)
        idx, best = self._sweep(X, C, chunk_elements)
        sums, counts = accumulate(X, idx, C.shape[0])
        return idx, best, sums, counts

    def pairwise_sq(self, X: np.ndarray, C: np.ndarray,
                    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                    ) -> np.ndarray:
        """Dense (n, k) squared distances, assembled chunk by chunk."""
        X, C = validate_data(X, C)
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        out = np.empty((n, k), dtype=X.dtype)
        for lo, hi in chunk_ranges(n, rows):
            out[lo:hi] = self._sq_block(X[lo:hi], C, ctx)
        return out


class NaiveKernel(KernelBackend):
    """Direct-form distances — the fidelity reference.

    Matches the partitioned dimension slices bit for bit: the hardware
    computes and sums per-dimension ``(x - c)^2`` terms, which is exactly
    this formulation.
    """

    name = "naive"

    def chunk_rows(self, n: int, k: int, d: int,
                   chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> int:
        # The direct form materialises a (rows, k, d) subtraction
        # temporary, so sizing rows by k alone would overshoot the
        # working-set bound by a factor of d.
        return max(1, chunk_elements // max(k * d, 1))

    def _prepare(self, C: np.ndarray, max_rows: int) -> object:
        return None

    def _argmin_block(self, block: np.ndarray, C: np.ndarray,
                      ctx: object) -> np.ndarray:
        return np.argmin(squared_distances(block, C), axis=1)

    def _sq_block(self, block: np.ndarray, C: np.ndarray,
                  ctx: object) -> np.ndarray:
        return squared_distances(block, C)


class GemmKernel(KernelBackend):
    """Blocked ``|x|^2 - 2 X C^T + |c|^2`` — the production hot path.

    One BLAS matmul per chunk replaces the (b, k, d) subtraction temporary
    of the naive form.  The centroid norms ``|c|^2`` are computed once per
    call, and one (rows, k) scratch buffer is reused across chunks (and
    across calls, while shapes allow) so the steady-state loop allocates
    nothing.  The argmin drops the per-row-constant ``|x|^2`` term.

    The scratch buffer is thread-local: one backend instance is shared by
    every executor, restart, and predict() call, and the thread engine maps
    block sweeps of the *same* instance across a pool concurrently.
    """

    name = "gemm"

    def __init__(self) -> None:
        self._scratch = threading.local()

    def _buffer(self, rows: int, k: int, dtype: np.dtype) -> np.ndarray:
        buf: Optional[np.ndarray] = getattr(self._scratch, "buf", None)
        if (buf is None or buf.shape[0] < rows
                or buf.shape[1] != k or buf.dtype != dtype):
            buf = np.empty((rows, k), dtype=dtype)
            self._scratch.buf = buf
        return buf

    def _prepare(self, C: np.ndarray, max_rows: int) -> object:
        c_sq = np.einsum("kd,kd->k", C, C)
        buf = self._buffer(max(1, max_rows), C.shape[0], C.dtype)
        return c_sq, buf

    def _partial_block(self, block: np.ndarray, C: np.ndarray,
                       ctx: object) -> np.ndarray:
        """``|c|^2 - 2 x.c`` for one chunk, written into the scratch buffer."""
        c_sq, buf = ctx
        b = block.shape[0]
        g = buf[:b]
        np.matmul(block, C.T, out=g)
        g *= -2.0
        g += c_sq[None, :]
        return g

    def _argmin_block(self, block: np.ndarray, C: np.ndarray,
                      ctx: object) -> np.ndarray:
        # |x|^2 shifts every candidate of a row equally — skip it.
        return np.argmin(self._partial_block(block, C, ctx), axis=1)

    def _sq_block(self, block: np.ndarray, C: np.ndarray,
                  ctx: object) -> np.ndarray:
        d2 = self._partial_block(block, C, ctx).copy()
        d2 += np.einsum("bd,bd->b", block, block)[:, None]
        np.maximum(d2, 0.0, out=d2)
        return d2

    def _winner_sq_block(self, block: np.ndarray, C: np.ndarray,
                         local: np.ndarray, ctx: object) -> np.ndarray:
        """Exact squared distance of each row to its chosen centroid.

        Deliberately *not* gathered from the GEMM result: a BLAS matmul
        element can depend on the whole chunk's blocking, while this
        einsum contraction reduces each row independently — so the pruned
        kernel reproduces the value for any subset of rows (skipped
        points, surviving candidates) bit-for-bit.
        """
        c_sq, _ = ctx
        best = c_sq[local] - 2.0 * np.einsum("bd,bd->b", block, C[local])
        best += np.einsum("bd,bd->b", block, block)
        np.maximum(best, 0.0, out=best)
        return best

    def _argmin_best_block(self, block: np.ndarray, C: np.ndarray,
                           ctx: object) -> Tuple[np.ndarray, np.ndarray]:
        # Argmin over the same partial form assign() uses — adding the
        # per-row |x|^2 and clamping first can flip near-exact ties — then
        # materialise the exact squared distance for the winner only, via
        # the row-independent routine the pruned kernel shares.
        g = self._partial_block(block, C, ctx)
        local = np.argmin(g, axis=1)
        return local, self._winner_sq_block(block, C, local, ctx)


#: One pruned block sweep: (labels, best_d2, sums, counts, lb, n_dist).
PrunedSweep = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                    np.ndarray, int]


class PrunedKernel(GemmKernel):
    """Gemm formulation plus per-block triangle-inequality pruning.

    The stateless public API (``assign`` / ``assign_with_distances`` /
    ``assign_accumulate`` / ``pairwise_sq``) is inherited from
    :class:`GemmKernel` unchanged — without carried bounds there is
    nothing to prune.  The two extra entry points implement the stateful
    sweep the executors drive through
    :class:`~repro.core.bounds.BlockBounds`:

    ``establish``
        A full gemm sweep that additionally derives, per sample, the
        exact winning squared distance (via the row-independent winner
        routine) and a lower bound on the runner-up distance from the
        second-smallest partial.

    ``assign_accumulate_pruned``
        The bounded iteration.  Per chunk: refresh the exact assigned
        distance only where the assigned centroid moved (``drift > 0`` —
        unmoved centroids are bitwise unchanged, so the stored exact
        value still holds), drift the lower bound by the worst centroid
        movement, and run the k-wide GEMM only for candidates whose
        upper bound fails Hamerly's test ``ub < max(s[a], lb)``.  Skipped
        points provably keep their assignment, and every reported
        distance comes from the shared winner routine, so labels, sums,
        and inertia are bit-identical to the unpruned gemm sweep.

    Both return the actual number of point-centroid distance evaluations
    (``n_dist``) so the executors can charge the ledger for work done,
    not work avoided.
    """

    name = "pruned"

    def establish(self, X: np.ndarray, C: np.ndarray,
                  chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                  ) -> PrunedSweep:
        """Full sweep that also establishes the bound state for a block."""
        X, C = validate_data(X, C)
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        labels = np.empty(n, dtype=np.int64)
        best = np.empty(n, dtype=X.dtype)
        lb = np.empty(n, dtype=np.float64)
        for lo, hi in chunk_ranges(n, rows):
            block = X[lo:hi]
            g = self._partial_block(block, C, ctx)
            local = np.argmin(g, axis=1)
            labels[lo:hi] = local
            best[lo:hi] = self._winner_sq_block(block, C, local, ctx)
            lb[lo:hi] = self._runnerup_lb(block, g, k)
        sums, counts = accumulate(X, labels, k)
        return labels, best, sums, counts, lb, n * k

    def assign_accumulate_pruned(self, X: np.ndarray, C: np.ndarray,
                                 labels_in: np.ndarray, d2_in: np.ndarray,
                                 lb_in: np.ndarray, drift: np.ndarray,
                                 s: np.ndarray,
                                 chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                                 ) -> PrunedSweep:
        """One bounded sweep over a block with carried state.

        Pure with respect to its inputs: the carried arrays are read
        only, fresh outputs are returned — an engine-level task retry
        re-runs from unpoisoned state.
        """
        X, C = validate_data(X, C)
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        labels = np.array(labels_in, copy=True)
        d2 = np.array(d2_in, copy=True)
        lb = lb_in - (drift.max() if k > 1 else 0.0)
        n_dist = 0
        for lo, hi in chunk_ranges(n, rows):
            block = X[lo:hi]
            chunk_labels = labels[lo:hi]
            chunk_d2 = d2[lo:hi]
            # Refresh the exact assigned distance only where the assigned
            # centroid actually moved; an unmoved centroid is bitwise
            # unchanged, so the stored exact value is still the exact
            # current value.  (An exact zero test on the drift vector is
            # intentional: it detects bitwise-identical centroids, not
            # numerical closeness.)
            moved = np.flatnonzero(drift[chunk_labels] > 0.0)
            if moved.size:
                chunk_d2[moved] = self._winner_sq_block(
                    block[moved], C, chunk_labels[moved], ctx)
                n_dist += int(moved.size)
            # Hamerly's test on exact upper bounds: strict failure only —
            # a point tied with its runner-up always stays a candidate,
            # so tie-breaking matches the unpruned argmin exactly.
            ub = np.sqrt(chunk_d2)
            cand = np.flatnonzero(
                ub >= np.maximum(s[chunk_labels], lb[lo:hi]))
            if cand.size:
                sub = block[cand]
                g = self._partial_block(sub, C, ctx)
                local = np.argmin(g, axis=1)
                chunk_labels[cand] = local
                chunk_d2[cand] = self._winner_sq_block(sub, C, local, ctx)
                lb[lo:hi][cand] = self._runnerup_lb(sub, g, k)
                n_dist += int(cand.size) * k
        sums, counts = accumulate(X, labels, k)
        return labels, d2, sums, counts, lb, n_dist

    def _runnerup_lb(self, block: np.ndarray, g: np.ndarray,
                     k: int) -> np.ndarray:
        """Lower bound on the distance to the second-closest centroid.

        Derived from the second-smallest entry of the partial form ``g``
        (the same ordering the argmin used) plus the per-row ``|x|^2``.
        With one centroid there is no runner-up: the bound is +inf and
        the Hamerly test can never unskip anything.
        """
        if k <= 1:
            return np.full(block.shape[0], np.inf)
        second = np.partition(g, 1, axis=1)[:, 1]
        lb_sq = second + np.einsum("bd,bd->b", block, block)
        np.maximum(lb_sq, 0.0, out=lb_sq)
        return np.sqrt(lb_sq)


#: Anything :func:`resolve_kernel` accepts (None consults ``REPRO_KERNEL``).
KernelLike = Union[str, KernelBackend]


def resolve_kernel(kernel: Optional[KernelLike] = None) -> KernelBackend:
    """Turn a backend name (or a ready instance) into a :class:`KernelBackend`.

    ``kernel=None`` consults ``REPRO_KERNEL`` (default ``"naive"``);
    empty or whitespace-only values count as unset, so CI matrices can
    export empty strings on the legs that don't use the knob.
    """
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel is None:
        kernel = read_str(ENV_KERNEL) or "naive"
    if kernel == "naive":
        return NaiveKernel()
    if kernel == "gemm":
        return GemmKernel()
    if kernel == "pruned":
        return PrunedKernel()
    raise ConfigurationError(
        f"kernel must be a KernelBackend instance or one of {KERNELS}, "
        f"got {kernel!r}"
    )
