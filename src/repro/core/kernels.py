"""Pluggable compute kernels for the Assign step.

Every executor funnels its nearest-centroid arithmetic through a
:class:`KernelBackend`, decoupling *which distance formulation runs* from
*how the partition charges modelled cost*.  Two backends ship:

``naive``
    The direct ``sum((x - c)^2)`` form, chunked — numerically identical to
    what the dimension-sliced hardware dataflow computes and sums, so it is
    the reference for the fidelity/strict-CPE tests.

``gemm``
    The communication-avoiding blocked formulation
    ``|x|^2 - 2 X C^T + |c|^2``: one BLAS GEMM per sample block instead of
    an (n, k, d) subtraction temporary, with the centroid norms computed
    once per call and the (rows, k) distance block reused across chunks.
    For pure assignment the ``|x|^2`` term is a per-row constant and is
    dropped from the argmin entirely.

Backends are selected with ``HierarchicalKMeans(..., kernel="gemm")`` (or
per-executor via ``Level3Executor(machine, kernel="gemm")``) and produce
identical assignments on non-degenerate data; only the floating-point
rounding of near-exact ties can differ between formulations.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ._common import (
    DEFAULT_CHUNK_ELEMENTS,
    accumulate,
    chunk_ranges,
    squared_distances,
    validate_data,
)

#: Names accepted by :func:`resolve_kernel`.
KERNELS = ("naive", "gemm")


class KernelBackend(ABC):
    """One distance formulation behind the Assign step.

    Subclasses implement the per-chunk primitives; the base class owns the
    chunking loop so every backend observes the same bounded working set
    (the in-memory analogue of streaming sample blocks through the LDM)
    and the same tie rule (np.argmin — lowest centroid index wins).
    """

    #: Registry name of the backend ("naive", "gemm", ...).
    name: str = ""

    # -- per-chunk primitives ----------------------------------------------------

    @abstractmethod
    def _prepare(self, C: np.ndarray, max_rows: int) -> object:
        """Per-call setup (centroid norms, scratch buffers); returns a context."""

    @abstractmethod
    def _argmin_block(self, block: np.ndarray, C: np.ndarray,
                      ctx: object) -> np.ndarray:
        """Nearest-centroid index for one sample block."""

    @abstractmethod
    def _sq_block(self, block: np.ndarray, C: np.ndarray,
                  ctx: object) -> np.ndarray:
        """Full (b, k) squared-distance block for one sample block."""

    def _argmin_best_block(self, block: np.ndarray, C: np.ndarray,
                           ctx: object) -> Tuple[np.ndarray, np.ndarray]:
        """Winning index plus its squared distance for one sample block.

        Must pick the winner exactly like :meth:`_argmin_block` — same
        formulation, same ties — so ``assign()`` and the sweeps behind
        ``assign_with_distances()`` / ``assign_accumulate()`` never
        disagree.  Backends whose argmin runs on a cheaper partial form
        override this to argmin that form and materialise the full
        distance for the winner only.
        """
        d2 = self._sq_block(block, C, ctx)
        local = np.argmin(d2, axis=1)
        return local, d2[np.arange(block.shape[0]), local]

    # -- chunk policy -------------------------------------------------------------

    def chunk_rows(self, n: int, k: int, d: int,
                   chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> int:
        """Sample rows per chunk so the transient working set stays bounded.

        The default assumes the largest per-chunk temporary is the
        (rows, k) distance block.  Backends whose intermediates scale
        differently (the naive form's (rows, k, d) subtraction temporary)
        override this — it is the single place the chunk shape is decided,
        so the fused and unfused sweeps always agree on boundaries.
        """
        return max(1, chunk_elements // max(k, 1))

    # -- public API ---------------------------------------------------------------

    def assign(self, X: np.ndarray, C: np.ndarray,
               chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> np.ndarray:
        """Nearest-centroid assignment for every sample (int64 indices)."""
        X, C = validate_data(X, C)
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        out = np.empty(n, dtype=np.int64)
        for lo, hi in chunk_ranges(n, rows):
            out[lo:hi] = self._argmin_block(X[lo:hi], C, ctx)
        return out

    def _sweep(self, X: np.ndarray, C: np.ndarray, chunk_elements: int
               ) -> Tuple[np.ndarray, np.ndarray]:
        """One chunked pass: winning index and squared distance per sample."""
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        idx = np.empty(n, dtype=np.int64)
        best = np.empty(n, dtype=X.dtype)
        for lo, hi in chunk_ranges(n, rows):
            local, best_block = self._argmin_best_block(X[lo:hi], C, ctx)
            idx[lo:hi] = local
            best[lo:hi] = best_block
        return idx, best

    def assign_with_distances(self, X: np.ndarray, C: np.ndarray,
                              chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """Assignments plus the squared distance to the winning centroid."""
        X, C = validate_data(X, C)
        return self._sweep(X, C, chunk_elements)

    def assign_accumulate(self, X: np.ndarray, C: np.ndarray,
                          chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray]:
        """Fused Assign+Accumulate: ``(assignments, best_d2, sums, counts)``.

        The executors' hot path.  One chunked sweep produces the winning
        index *and* its squared distance (the per-iteration inertia then
        costs a vector mean instead of a fresh ``X - C[assignments]``
        pass), followed by one bincount accumulation over the whole block.
        The accumulation deliberately runs over the full block rather than
        per chunk so the sums are bit-identical to the unfused
        ``assign_with_distances`` + ``accumulate`` pair — the property the
        engine-parity tests and fault replays rely on.
        """
        X, C = validate_data(X, C)
        idx, best = self._sweep(X, C, chunk_elements)
        sums, counts = accumulate(X, idx, C.shape[0])
        return idx, best, sums, counts

    def pairwise_sq(self, X: np.ndarray, C: np.ndarray,
                    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
                    ) -> np.ndarray:
        """Dense (n, k) squared distances, assembled chunk by chunk."""
        X, C = validate_data(X, C)
        n, k = X.shape[0], C.shape[0]
        rows = self.chunk_rows(n, k, X.shape[1], chunk_elements)
        ctx = self._prepare(C, min(rows, n))
        out = np.empty((n, k), dtype=X.dtype)
        for lo, hi in chunk_ranges(n, rows):
            out[lo:hi] = self._sq_block(X[lo:hi], C, ctx)
        return out


class NaiveKernel(KernelBackend):
    """Direct-form distances — the fidelity reference.

    Matches the partitioned dimension slices bit for bit: the hardware
    computes and sums per-dimension ``(x - c)^2`` terms, which is exactly
    this formulation.
    """

    name = "naive"

    def chunk_rows(self, n: int, k: int, d: int,
                   chunk_elements: int = DEFAULT_CHUNK_ELEMENTS) -> int:
        # The direct form materialises a (rows, k, d) subtraction
        # temporary, so sizing rows by k alone would overshoot the
        # working-set bound by a factor of d.
        return max(1, chunk_elements // max(k * d, 1))

    def _prepare(self, C: np.ndarray, max_rows: int) -> object:
        return None

    def _argmin_block(self, block: np.ndarray, C: np.ndarray,
                      ctx: object) -> np.ndarray:
        return np.argmin(squared_distances(block, C), axis=1)

    def _sq_block(self, block: np.ndarray, C: np.ndarray,
                  ctx: object) -> np.ndarray:
        return squared_distances(block, C)


class GemmKernel(KernelBackend):
    """Blocked ``|x|^2 - 2 X C^T + |c|^2`` — the production hot path.

    One BLAS matmul per chunk replaces the (b, k, d) subtraction temporary
    of the naive form.  The centroid norms ``|c|^2`` are computed once per
    call, and one (rows, k) scratch buffer is reused across chunks (and
    across calls, while shapes allow) so the steady-state loop allocates
    nothing.  The argmin drops the per-row-constant ``|x|^2`` term.

    The scratch buffer is thread-local: one backend instance is shared by
    every executor, restart, and predict() call, and the thread engine maps
    block sweeps of the *same* instance across a pool concurrently.
    """

    name = "gemm"

    def __init__(self) -> None:
        self._scratch = threading.local()

    def _buffer(self, rows: int, k: int, dtype: np.dtype) -> np.ndarray:
        buf: Optional[np.ndarray] = getattr(self._scratch, "buf", None)
        if (buf is None or buf.shape[0] < rows
                or buf.shape[1] != k or buf.dtype != dtype):
            buf = np.empty((rows, k), dtype=dtype)
            self._scratch.buf = buf
        return buf

    def _prepare(self, C: np.ndarray, max_rows: int) -> object:
        c_sq = np.einsum("kd,kd->k", C, C)
        buf = self._buffer(max(1, max_rows), C.shape[0], C.dtype)
        return c_sq, buf

    def _partial_block(self, block: np.ndarray, C: np.ndarray,
                       ctx: object) -> np.ndarray:
        """``|c|^2 - 2 x.c`` for one chunk, written into the scratch buffer."""
        c_sq, buf = ctx
        b = block.shape[0]
        g = buf[:b]
        np.matmul(block, C.T, out=g)
        g *= -2.0
        g += c_sq[None, :]
        return g

    def _argmin_block(self, block: np.ndarray, C: np.ndarray,
                      ctx: object) -> np.ndarray:
        # |x|^2 shifts every candidate of a row equally — skip it.
        return np.argmin(self._partial_block(block, C, ctx), axis=1)

    def _sq_block(self, block: np.ndarray, C: np.ndarray,
                  ctx: object) -> np.ndarray:
        d2 = self._partial_block(block, C, ctx).copy()
        d2 += np.einsum("bd,bd->b", block, block)[:, None]
        np.maximum(d2, 0.0, out=d2)
        return d2

    def _argmin_best_block(self, block: np.ndarray, C: np.ndarray,
                           ctx: object) -> Tuple[np.ndarray, np.ndarray]:
        # Argmin over the same partial form assign() uses — adding the
        # per-row |x|^2 and clamping first can flip near-exact ties — then
        # materialise the full squared distance for the winner only.
        g = self._partial_block(block, C, ctx)
        local = np.argmin(g, axis=1)
        best = g[np.arange(block.shape[0]), local]
        best += np.einsum("bd,bd->b", block, block)
        np.maximum(best, 0.0, out=best)
        return local, best


#: Anything :func:`resolve_kernel` accepts.
KernelLike = Union[str, KernelBackend]


def resolve_kernel(kernel: KernelLike = "naive") -> KernelBackend:
    """Turn a backend name (or a ready instance) into a :class:`KernelBackend`."""
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel == "naive":
        return NaiveKernel()
    if kernel == "gemm":
        return GemmKernel()
    raise ConfigurationError(
        f"kernel must be a KernelBackend instance or one of {KERNELS}, "
        f"got {kernel!r}"
    )
