"""Checkpoint/restart state for the simulated convergence loop.

Long-running Level-3 jobs on thousands of core groups cannot afford to lose
the whole run to one failed CG, so the executor periodically snapshots the
algorithm state — ``(iteration, centroids, rng state)`` is everything Lloyd
needs, since the assignments are a pure function of ``(X, C)``.  The
snapshot's modelled I/O cost (a burst-buffer write priced as
``latency + nbytes / bandwidth``) is charged to the ledger's ``checkpoint``
category; restoring after a fault charges the mirror read to ``recovery``.

Checkpoints always live in memory (that is the restart point the modelled
recovery policies roll back to), and can additionally be made **durable**:
pass ``checkpoint_dir=`` and every snapshot is persisted to disk as an
atomic write-tmp → fsync → rename ``.npz``, so a killed *host process* can
``resume=`` from the last snapshot and continue bit-identically.  Durability
changes nothing about the modelled cost accounting — host I/O is real time,
not simulated Sunway time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.envvars import ENV_CHECKPOINT_DIR
from ..errors import ConfigurationError
from ..runtime.ledger import LedgerProtocol

#: Default modelled burst-buffer bandwidth for checkpoint I/O (bytes/s).
DEFAULT_CHECKPOINT_BW = 1e9
#: Default per-snapshot latency (seconds) — metadata + sync overhead.
DEFAULT_CHECKPOINT_LATENCY = 1e-3

#: Environment override for the durable checkpoint directory, consulted by
#: the facade when ``checkpoint_dir=None`` (empty/whitespace = unset;
#: declared in :mod:`repro.analysis.envvars`).
CHECKPOINT_DIR_ENV = ENV_CHECKPOINT_DIR.name

#: Filename of the durable snapshot inside ``checkpoint_dir``.
CHECKPOINT_FILENAME = "checkpoint.npz"


@dataclass(frozen=True)
class CheckpointConfig:
    """Cadence and cost parameters of the checkpoint stream.

    Parameters
    ----------
    every:
        Snapshot every ``every`` successful iterations (None disables
        periodic snapshots; the free epoch-0 snapshot of the initial
        centroids is always kept so ``replan`` has a floor to restart from).
    bandwidth:
        Modelled I/O bandwidth in bytes/s.
    latency:
        Fixed per-snapshot overhead in seconds.
    """

    every: Optional[int] = None
    bandwidth: float = DEFAULT_CHECKPOINT_BW
    latency: float = DEFAULT_CHECKPOINT_LATENCY

    def __post_init__(self) -> None:
        if self.every is not None and self.every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1 or None, got {self.every}"
            )
        if not self.bandwidth > 0:
            raise ConfigurationError(
                f"checkpoint bandwidth must be > 0, got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ConfigurationError(
                f"checkpoint latency must be >= 0, got {self.latency}"
            )

    def io_seconds(self, nbytes: int) -> float:
        """Modelled time to move one ``nbytes`` snapshot (either way)."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class Checkpoint:
    """One saved snapshot of the convergence-loop state."""

    iteration: int
    centroids: np.ndarray
    rng_state: Optional[dict] = None

    @property
    def nbytes(self) -> int:
        return int(self.centroids.nbytes)


def load_checkpoint(directory: str) -> Optional[Checkpoint]:
    """Load the durable snapshot from ``directory`` (None if absent).

    The atomic-rename write protocol guarantees that whatever file exists
    is a complete snapshot — a process killed mid-write leaves only the
    previous one (or its orphaned ``.tmp``, which is ignored).
    """
    path = os.path.join(directory, CHECKPOINT_FILENAME)
    if not os.path.exists(path):
        return None
    try:
        with np.load(path) as data:
            return Checkpoint(
                iteration=int(data["iteration"]),
                centroids=np.array(data["centroids"]),
            )
    except (OSError, KeyError, ValueError) as e:
        raise ConfigurationError(
            f"cannot load checkpoint from {path!r}: {e}"
        ) from None


class CheckpointStore:
    """Holds the latest snapshot and charges its modelled I/O.

    The store keeps only the most recent checkpoint (the restart point);
    ``n_saved`` counts how many periodic snapshots were taken so benchmarks
    can report checkpoint overhead per cadence.  With ``directory`` set,
    every snapshot is additionally persisted to
    ``directory/checkpoint.npz`` via atomic write-tmp → fsync → rename, so
    a killed process can resume from disk.
    """

    def __init__(self, config: CheckpointConfig,
                 ledger: LedgerProtocol,
                 directory: Optional[str] = None) -> None:
        self.config = config
        self.ledger = ledger
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self.last: Optional[Checkpoint] = None
        self.n_saved = 0

    @property
    def enabled(self) -> bool:
        """Whether periodic snapshots are taken at all."""
        return self.config.every is not None

    @property
    def durable(self) -> bool:
        """Whether snapshots are persisted to disk."""
        return self.directory is not None

    def _persist(self, checkpoint: Checkpoint) -> None:
        """Atomically write the snapshot: tmp file → fsync → rename.

        ``os.replace`` is atomic on POSIX, so a reader (or a resumed run)
        never sees a torn snapshot no matter when the writer dies.
        """
        path = os.path.join(self.directory, CHECKPOINT_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            np.savez(fh, iteration=np.int64(checkpoint.iteration),
                     centroids=checkpoint.centroids)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def save_initial(self, centroids: np.ndarray) -> None:
        """Record the free epoch-0 snapshot of the initial centroids.

        The initial centroids are already resident everywhere after the
        setup broadcast, so this costs nothing — it just guarantees that
        ``restore`` always has a state to fall back to.
        """
        self.last = Checkpoint(iteration=0,
                               centroids=np.array(centroids, copy=True))
        if self.durable:
            self._persist(self.last)

    def adopt(self, checkpoint: Checkpoint) -> None:
        """Seed the store with a snapshot loaded from disk (resume path).

        No modelled charge and no re-persist: the snapshot already exists
        durably, and resuming is a host-side act outside the simulated
        machine's cost model.
        """
        self.last = Checkpoint(iteration=int(checkpoint.iteration),
                               centroids=np.array(checkpoint.centroids,
                                                  copy=True))

    def maybe_save(self, iteration: int, centroids: np.ndarray,
                   rng_state: Optional[dict] = None) -> bool:
        """Snapshot if the cadence says so; charge the write.

        Returns True when a snapshot was taken.
        """
        if self.config.every is None or iteration % self.config.every != 0:
            return False
        self.last = Checkpoint(iteration=iteration,
                               centroids=np.array(centroids, copy=True),
                               rng_state=rng_state)
        self.n_saved += 1
        self.ledger.charge("checkpoint", "checkpoint.save",
                           self.config.io_seconds(self.last.nbytes))
        if self.durable:
            self._persist(self.last)
        return True

    def restore(self) -> Checkpoint:
        """Return the latest snapshot, charging the read to ``recovery``."""
        if self.last is None:
            raise ConfigurationError(
                "no checkpoint available to restore from "
                "(setup never ran save_initial)"
            )
        self.ledger.charge("recovery", "recovery.restore_checkpoint",
                           self.config.io_seconds(self.last.nbytes))
        return self.last
