"""Checkpoint/restart state for the simulated convergence loop.

Long-running Level-3 jobs on thousands of core groups cannot afford to lose
the whole run to one failed CG, so the executor periodically snapshots the
algorithm state — ``(iteration, centroids, rng state)`` is everything Lloyd
needs, since the assignments are a pure function of ``(X, C)``.  The
snapshot's modelled I/O cost (a burst-buffer write priced as
``latency + nbytes / bandwidth``) is charged to the ledger's ``checkpoint``
category; restoring after a fault charges the mirror read to ``recovery``.

Checkpoints always live in memory (that is the restart point the modelled
recovery policies roll back to), and can additionally be made **durable**:
pass ``checkpoint_dir=`` and every snapshot is persisted to disk as an
atomic write-tmp → fsync → rename ``.npz``, so a killed *host process* can
``resume=`` from the last snapshot and continue bit-identically.  Durability
changes nothing about the modelled cost accounting — host I/O is real time,
not simulated Sunway time.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..analysis.envvars import ENV_CHECKPOINT_DIR
from ..errors import ConfigurationError, IntegrityError
from ..runtime.chaos import ChaosInjector
from ..runtime.integrity import manifest_digests, resolve_integrity
from ..runtime.ledger import LedgerProtocol

#: Default modelled burst-buffer bandwidth for checkpoint I/O (bytes/s).
DEFAULT_CHECKPOINT_BW = 1e9
#: Default per-snapshot latency (seconds) — metadata + sync overhead.
DEFAULT_CHECKPOINT_LATENCY = 1e-3

#: Environment override for the durable checkpoint directory, consulted by
#: the facade when ``checkpoint_dir=None`` (empty/whitespace = unset;
#: declared in :mod:`repro.analysis.envvars`).
CHECKPOINT_DIR_ENV = ENV_CHECKPOINT_DIR.name

#: Filename of the durable snapshot inside ``checkpoint_dir``.
CHECKPOINT_FILENAME = "checkpoint.npz"

#: On-disk snapshot layout version.  Bumped when the npz field set changes
#: incompatibly; ``load_checkpoint`` accepts snapshots without the field
#: (pre-versioning legacy) and rejects unknown versions.  Version 1 added
#: the field itself plus the SHA-256 integrity manifest.
CHECKPOINT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CheckpointConfig:
    """Cadence and cost parameters of the checkpoint stream.

    Parameters
    ----------
    every:
        Snapshot every ``every`` successful iterations (None disables
        periodic snapshots; the free epoch-0 snapshot of the initial
        centroids is always kept so ``replan`` has a floor to restart from).
    bandwidth:
        Modelled I/O bandwidth in bytes/s.
    latency:
        Fixed per-snapshot overhead in seconds.
    """

    every: Optional[int] = None
    bandwidth: float = DEFAULT_CHECKPOINT_BW
    latency: float = DEFAULT_CHECKPOINT_LATENCY

    def __post_init__(self) -> None:
        if self.every is not None and self.every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1 or None, got {self.every}"
            )
        if not self.bandwidth > 0:
            raise ConfigurationError(
                f"checkpoint bandwidth must be > 0, got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ConfigurationError(
                f"checkpoint latency must be >= 0, got {self.latency}"
            )

    def io_seconds(self, nbytes: int) -> float:
        """Modelled time to move one ``nbytes`` snapshot (either way)."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class Checkpoint:
    """One saved snapshot of the convergence-loop state."""

    iteration: int
    centroids: np.ndarray
    rng_state: Optional[dict] = None

    @property
    def nbytes(self) -> int:
        return int(self.centroids.nbytes)


def load_checkpoint(directory: str,
                    integrity: Optional[str] = None) -> Optional[Checkpoint]:
    """Load and verify the durable snapshot from ``directory`` (None if absent).

    The atomic-rename write protocol guarantees that whatever file exists
    is a *complete* write — a process killed mid-write leaves only the
    previous snapshot (or its orphaned ``.tmp``, which is ignored).  It does
    **not** guarantee the bytes are intact: disks rot and the chaos layer's
    ``bitflip_checkpoint`` flips bits post-rename.  Every way a damaged file
    can surface — truncated/garbage zip container, bad member CRC, missing
    fields — maps to a typed :class:`~repro.errors.IntegrityError` carrying
    the offending ``path``; only host-environment failures (permissions,
    I/O errors) stay :class:`~repro.errors.ConfigurationError`.

    Version-1 snapshots embed a ``schema_version`` field (absent on legacy
    files, which are accepted; unknown versions are rejected) and a SHA-256
    manifest over every payload array, verified unless the resolved
    ``integrity`` mode — explicit argument beats ``REPRO_INTEGRITY`` beats
    ``"off"`` — is ``"off"``.
    """
    path = os.path.join(directory, CHECKPOINT_FILENAME)
    if not os.path.exists(path):
        return None
    mode = resolve_integrity(integrity)
    try:
        with np.load(path) as data:
            if "schema_version" in data.files:
                version = int(data["schema_version"])
                if version > CHECKPOINT_SCHEMA_VERSION:
                    raise ConfigurationError(
                        f"cannot load checkpoint from {path!r}: snapshot "
                        f"schema version {version} is newer than the "
                        f"supported {CHECKPOINT_SCHEMA_VERSION}"
                    )
            arrays = {"iteration": np.asarray(data["iteration"]),
                      "centroids": np.asarray(data["centroids"])}
            if mode != "off" and "manifest" in data.files:
                stored = json.loads(str(data["manifest"][()]))
                if manifest_digests(arrays) != stored:
                    raise IntegrityError(
                        f"cannot load checkpoint from {path!r}: SHA-256 "
                        f"manifest mismatch (snapshot bytes were corrupted "
                        f"on disk after writing)",
                        path=path, location="checkpoint",
                    )
            return Checkpoint(
                iteration=int(arrays["iteration"]),
                centroids=np.array(arrays["centroids"]),
            )
    except (zipfile.BadZipFile, KeyError, ValueError, EOFError) as e:
        raise IntegrityError(
            f"cannot load checkpoint from {path!r}: corrupted or truncated "
            f"snapshot ({e})",
            path=path, location="checkpoint",
        ) from None
    except OSError as e:
        raise ConfigurationError(
            f"cannot load checkpoint from {path!r}: {e}"
        ) from None


def _null_record(kind: str, detail: str, seconds: float = 0.0) -> None:
    """Event sink for stores wired to chaos but not to a host-event log."""


class CheckpointStore:
    """Holds the latest snapshot and charges its modelled I/O.

    The store keeps only the most recent checkpoint (the restart point);
    ``n_saved`` counts how many periodic snapshots were taken so benchmarks
    can report checkpoint overhead per cadence.  With ``directory`` set,
    every snapshot is additionally persisted to
    ``directory/checkpoint.npz`` via atomic write-tmp → fsync → rename, so
    a killed process can resume from disk.
    """

    def __init__(self, config: CheckpointConfig,
                 ledger: LedgerProtocol,
                 directory: Optional[str] = None,
                 chaos: Optional[ChaosInjector] = None,
                 integrity: str = "off",
                 record: Optional[Callable[[str, str, float], None]] = None,
                 ) -> None:
        self.config = config
        self.ledger = ledger
        self.directory = directory
        #: Chaos seam: after every durable write the injector may flip one
        #: bit of the npz on disk (``bitflip_checkpoint``), keyed by the
        #: write counter so replays are deterministic.
        self.chaos = chaos
        self.integrity = resolve_integrity(integrity or "off")
        self._record = record
        self._writes = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self.last: Optional[Checkpoint] = None
        self.n_saved = 0

    @property
    def enabled(self) -> bool:
        """Whether periodic snapshots are taken at all."""
        return self.config.every is not None

    @property
    def durable(self) -> bool:
        """Whether snapshots are persisted to disk."""
        return self.directory is not None

    def _persist(self, checkpoint: Checkpoint) -> None:
        """Atomically write the snapshot: tmp file → fsync → rename.

        ``os.replace`` is atomic on POSIX, so a reader (or a resumed run)
        never sees a torn snapshot no matter when the writer dies.  Every
        snapshot carries its schema version and a SHA-256 manifest over the
        payload arrays, so ``load_checkpoint`` can tell post-write bit rot
        from a clean legacy file.  The chaos injector's checkpoint hook runs
        *after* the rename — it models corruption of the durable copy, not
        a torn write (the rename protocol already excludes those).
        """
        assert self.directory is not None
        path = os.path.join(self.directory, CHECKPOINT_FILENAME)
        tmp = path + ".tmp"
        arrays = {"iteration": np.asarray(np.int64(checkpoint.iteration)),
                  "centroids": np.asarray(checkpoint.centroids)}
        manifest = json.dumps(manifest_digests(arrays), sort_keys=True)
        with open(tmp, "wb") as fh:
            np.savez(fh, iteration=arrays["iteration"],
                     centroids=arrays["centroids"],
                     schema_version=np.int64(CHECKPOINT_SCHEMA_VERSION),
                     manifest=manifest)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        write_id = self._writes
        self._writes += 1
        if self.chaos is not None:
            self.chaos.on_checkpoint_write(write_id, path,
                                           self._record or _null_record)

    def save_initial(self, centroids: np.ndarray) -> None:
        """Record the free epoch-0 snapshot of the initial centroids.

        The initial centroids are already resident everywhere after the
        setup broadcast, so this costs nothing — it just guarantees that
        ``restore`` always has a state to fall back to.
        """
        self.last = Checkpoint(iteration=0,
                               centroids=np.array(centroids, copy=True))
        if self.durable:
            self._persist(self.last)

    def adopt(self, checkpoint: Checkpoint) -> None:
        """Seed the store with a snapshot loaded from disk (resume path).

        No modelled charge and no re-persist: the snapshot already exists
        durably, and resuming is a host-side act outside the simulated
        machine's cost model.
        """
        self.last = Checkpoint(iteration=int(checkpoint.iteration),
                               centroids=np.array(checkpoint.centroids,
                                                  copy=True))

    def maybe_save(self, iteration: int, centroids: np.ndarray,
                   rng_state: Optional[dict] = None) -> bool:
        """Snapshot if the cadence says so; charge the write.

        Returns True when a snapshot was taken.
        """
        if self.config.every is None or iteration % self.config.every != 0:
            return False
        self.last = Checkpoint(iteration=iteration,
                               centroids=np.array(centroids, copy=True),
                               rng_state=rng_state)
        self.n_saved += 1
        self.ledger.charge("checkpoint", "checkpoint.save",
                           self.config.io_seconds(self.last.nbytes))
        if self.durable:
            self._persist(self.last)
        return True

    def restore(self) -> Checkpoint:
        """Return the latest snapshot, charging the read to ``recovery``."""
        if self.last is None:
            raise ConfigurationError(
                "no checkpoint available to restore from "
                "(setup never ran save_initial)"
            )
        self.ledger.charge("recovery", "recovery.restore_checkpoint",
                           self.config.io_seconds(self.last.nbytes))
        return self.last
