"""Checkpoint/restart state for the simulated convergence loop.

Long-running Level-3 jobs on thousands of core groups cannot afford to lose
the whole run to one failed CG, so the executor periodically snapshots the
algorithm state — ``(iteration, centroids, rng state)`` is everything Lloyd
needs, since the assignments are a pure function of ``(X, C)``.  The
snapshot's modelled I/O cost (a burst-buffer write priced as
``latency + nbytes / bandwidth``) is charged to the ledger's ``checkpoint``
category; restoring after a fault charges the mirror read to ``recovery``.

Checkpoints live in memory (the machine is simulated; there is nothing
durable to write) but the *cost* is modelled faithfully so the
cadence-vs-overhead trade-off in ``benchmarks/bench_faults.py`` is real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..runtime.ledger import LedgerProtocol

#: Default modelled burst-buffer bandwidth for checkpoint I/O (bytes/s).
DEFAULT_CHECKPOINT_BW = 1e9
#: Default per-snapshot latency (seconds) — metadata + sync overhead.
DEFAULT_CHECKPOINT_LATENCY = 1e-3


@dataclass(frozen=True)
class CheckpointConfig:
    """Cadence and cost parameters of the checkpoint stream.

    Parameters
    ----------
    every:
        Snapshot every ``every`` successful iterations (None disables
        periodic snapshots; the free epoch-0 snapshot of the initial
        centroids is always kept so ``replan`` has a floor to restart from).
    bandwidth:
        Modelled I/O bandwidth in bytes/s.
    latency:
        Fixed per-snapshot overhead in seconds.
    """

    every: Optional[int] = None
    bandwidth: float = DEFAULT_CHECKPOINT_BW
    latency: float = DEFAULT_CHECKPOINT_LATENCY

    def __post_init__(self) -> None:
        if self.every is not None and self.every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1 or None, got {self.every}"
            )
        if not self.bandwidth > 0:
            raise ConfigurationError(
                f"checkpoint bandwidth must be > 0, got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ConfigurationError(
                f"checkpoint latency must be >= 0, got {self.latency}"
            )

    def io_seconds(self, nbytes: int) -> float:
        """Modelled time to move one ``nbytes`` snapshot (either way)."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class Checkpoint:
    """One saved snapshot of the convergence-loop state."""

    iteration: int
    centroids: np.ndarray
    rng_state: Optional[dict] = None

    @property
    def nbytes(self) -> int:
        return int(self.centroids.nbytes)


class CheckpointStore:
    """Holds the latest snapshot and charges its modelled I/O.

    The store keeps only the most recent checkpoint (the restart point);
    ``n_saved`` counts how many periodic snapshots were taken so benchmarks
    can report checkpoint overhead per cadence.
    """

    def __init__(self, config: CheckpointConfig,
                 ledger: LedgerProtocol) -> None:
        self.config = config
        self.ledger = ledger
        self.last: Optional[Checkpoint] = None
        self.n_saved = 0

    @property
    def enabled(self) -> bool:
        """Whether periodic snapshots are taken at all."""
        return self.config.every is not None

    def save_initial(self, centroids: np.ndarray) -> None:
        """Record the free epoch-0 snapshot of the initial centroids.

        The initial centroids are already resident everywhere after the
        setup broadcast, so this costs nothing — it just guarantees that
        ``restore`` always has a state to fall back to.
        """
        self.last = Checkpoint(iteration=0,
                               centroids=np.array(centroids, copy=True))

    def maybe_save(self, iteration: int, centroids: np.ndarray,
                   rng_state: Optional[dict] = None) -> bool:
        """Snapshot if the cadence says so; charge the write.

        Returns True when a snapshot was taken.
        """
        if self.config.every is None or iteration % self.config.every != 0:
            return False
        self.last = Checkpoint(iteration=iteration,
                               centroids=np.array(centroids, copy=True),
                               rng_state=rng_state)
        self.n_saved += 1
        self.ledger.charge("checkpoint", "checkpoint.save",
                           self.config.io_seconds(self.last.nbytes))
        return True

    def restore(self) -> Checkpoint:
        """Return the latest snapshot, charging the read to ``recovery``."""
        if self.last is None:
            raise ConfigurationError(
                "no checkpoint available to restore from "
                "(setup never ran save_initial)"
            )
        self.ledger.charge("recovery", "recovery.restore_checkpoint",
                           self.config.io_seconds(self.last.nbytes))
        return self.last
