"""Core k-means algorithms: serial baseline + the three partition levels."""

from .checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointStore,
    load_checkpoint,
)
from ._common import (
    EMPTY_ACTIONS,
    accumulate,
    assign_chunked,
    even_slices,
    inertia,
    max_centroid_shift,
    squared_distances,
    squared_distances_expanded,
    update_centroids,
)
from .constraints import (
    ConstraintCheck,
    FeasibilityReport,
    bender_window,
    ldm_elements,
    level1_feasibility,
    level2_feasibility,
    level3_feasibility,
    max_feasible_k_level1,
    min_mgroup_level2,
    min_mprime_group_level3,
)
from .init import METHODS as INIT_METHODS
from .init import init_centroids, spread_centroids
from .kernels import (
    KERNELS,
    GemmKernel,
    KernelBackend,
    NaiveKernel,
    resolve_kernel,
)
from .kmeans import LEVELS, HierarchicalKMeans, select_level
from .level1 import Level1Executor, run_level1
from .level2 import Level2Executor, run_level2
from .level3 import Level3Executor, run_level3
from .level3_bounded import Level3BoundedExecutor, run_level3_bounded
from .lloyd import lloyd, lloyd_single_iteration
from .recovery import (
    RECOVERY_POLICIES,
    FailFastPolicy,
    RecoveryAction,
    RecoveryPolicy,
    ReplanPolicy,
    RetryPolicy,
    resolve_recovery,
)
from .partition import (
    Level1Plan,
    Level2Plan,
    Level3Plan,
    plan_level1,
    plan_level2,
    plan_level3,
    stage_level1,
    stage_level2,
    stage_level3,
)
from .result import IterationStats, KMeansResult

__all__ = [
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointStore",
    "ConstraintCheck",
    "EMPTY_ACTIONS",
    "FailFastPolicy",
    "FeasibilityReport",
    "GemmKernel",
    "HierarchicalKMeans",
    "INIT_METHODS",
    "IterationStats",
    "KERNELS",
    "KMeansResult",
    "KernelBackend",
    "LEVELS",
    "NaiveKernel",
    "Level1Executor",
    "Level1Plan",
    "Level2Executor",
    "Level2Plan",
    "Level3BoundedExecutor",
    "Level3Executor",
    "Level3Plan",
    "RECOVERY_POLICIES",
    "RecoveryAction",
    "RecoveryPolicy",
    "ReplanPolicy",
    "RetryPolicy",
    "accumulate",
    "assign_chunked",
    "bender_window",
    "even_slices",
    "inertia",
    "init_centroids",
    "ldm_elements",
    "level1_feasibility",
    "level2_feasibility",
    "level3_feasibility",
    "lloyd",
    "load_checkpoint",
    "lloyd_single_iteration",
    "max_centroid_shift",
    "max_feasible_k_level1",
    "min_mgroup_level2",
    "min_mprime_group_level3",
    "plan_level1",
    "plan_level2",
    "plan_level3",
    "resolve_kernel",
    "resolve_recovery",
    "run_level1",
    "run_level2",
    "run_level3",
    "run_level3_bounded",
    "select_level",
    "spread_centroids",
    "squared_distances",
    "squared_distances_expanded",
    "stage_level1",
    "stage_level2",
    "stage_level3",
    "update_centroids",
]
