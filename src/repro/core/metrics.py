"""Clustering quality metrics.

The paper deliberately excludes solution quality from its evaluation ("the
quality of the solution (precision) are not considered"), but a usable
library needs it: the land-cover application (Figure 10) and downstream
users must be able to score a clustering.  Implemented here:

* ``purity``                  — fraction of samples whose cluster's majority
  label matches their own,
* ``normalized_mutual_info``  — NMI between assignment and ground truth,
* ``adjusted_rand_index``     — chance-corrected pair-counting agreement,
* ``silhouette_score``        — cohesion vs separation, with sampling so it
  stays tractable at large n,
* ``davies_bouldin``          — ratio of within-cluster scatter to
  between-centroid separation (lower is better).

All metrics are pure NumPy, vectorised, and validated against hand-worked
examples in the tests (no sklearn dependency).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError, DataShapeError
from ._common import squared_distances


def _validate_labels(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a).ravel()
    b = np.asarray(b).ravel()
    if a.shape != b.shape:
        raise DataShapeError(
            f"label arrays must have equal length, got {a.shape} vs {b.shape}"
        )
    if a.size == 0:
        raise DataShapeError("label arrays must be non-empty")
    return a.astype(np.int64), b.astype(np.int64)


def contingency(assignments: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Contingency table N[c, t] = #samples in cluster c with true label t."""
    a, t = _validate_labels(assignments, truth)
    if a.min() < 0 or t.min() < 0:
        raise ConfigurationError("labels must be non-negative integers")
    n_clusters = int(a.max()) + 1
    n_classes = int(t.max()) + 1
    table = np.zeros((n_clusters, n_classes), dtype=np.int64)
    np.add.at(table, (a, t), 1)
    return table


def purity(assignments: np.ndarray, truth: np.ndarray) -> float:
    """Weighted majority-label agreement in [0, 1]."""
    table = contingency(assignments, truth)
    return float(table.max(axis=1).sum() / table.sum())


def normalized_mutual_info(assignments: np.ndarray,
                           truth: np.ndarray) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1].

    Degenerate partitions (a single cluster or a single class) have zero
    entropy on one side; we return 0.0 there, matching the convention that
    a constant labelling carries no information.
    """
    table = contingency(assignments, truth).astype(np.float64)
    n = table.sum()
    pxy = table / n
    px = pxy.sum(axis=1)
    py = pxy.sum(axis=0)
    nz = pxy > 0
    outer = np.outer(px, py)
    mi = float((pxy[nz] * np.log(pxy[nz] / outer[nz])).sum())
    hx = float(-(px[px > 0] * np.log(px[px > 0])).sum())
    hy = float(-(py[py > 0] * np.log(py[py > 0])).sum())
    denom = 0.5 * (hx + hy)
    if denom <= 0:
        return 0.0
    return max(0.0, min(1.0, mi / denom))


def adjusted_rand_index(assignments: np.ndarray, truth: np.ndarray) -> float:
    """Hubert & Arabie's adjusted Rand index in [-1, 1]."""
    table = contingency(assignments, truth).astype(np.float64)
    n = table.sum()

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1.0) / 2.0

    sum_comb = comb2(table).sum()
    sum_a = comb2(table.sum(axis=1)).sum()
    sum_b = comb2(table.sum(axis=0)).sum()
    total = comb2(np.array(n))
    expected = sum_a * sum_b / total if total > 0 else 0.0
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0 if sum_comb == expected else 0.0
    return float((sum_comb - expected) / (max_index - expected))


def silhouette_score(X: np.ndarray, assignments: np.ndarray,
                     sample_size: Optional[int] = 2000,
                     seed: int = 0) -> float:
    """Mean silhouette coefficient in [-1, 1].

    For each sample: ``(b - a) / max(a, b)`` where a is the mean distance to
    its own cluster and b the smallest mean distance to another cluster.
    Distances are Euclidean.  With ``sample_size`` set (default 2000) the
    score is estimated on a uniform subsample — exact pairwise silhouettes
    are O(n^2) and the paper-scale n makes that pointless.
    """
    X = np.asarray(X, dtype=np.float64)
    a = np.asarray(assignments).ravel()
    if X.ndim != 2 or X.shape[0] != a.shape[0]:
        raise DataShapeError(
            f"X {X.shape} and assignments {a.shape} do not agree"
        )
    labels = np.unique(a)
    if labels.size < 2:
        raise ConfigurationError(
            "silhouette needs at least 2 populated clusters"
        )
    n = X.shape[0]
    if sample_size is not None and n > sample_size:
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=sample_size, replace=False)
    else:
        idx = np.arange(n)

    # Mean distance from each probe point to every cluster.
    probes = X[idx]
    probe_labels = a[idx]
    scores = np.empty(len(idx))
    mean_dist = np.empty((len(idx), labels.size))
    counts = np.empty(labels.size)
    for j, lab in enumerate(labels):
        members = X[a == lab]
        counts[j] = members.shape[0]
        d = np.sqrt(np.maximum(squared_distances(probes, members), 0.0))
        mean_dist[:, j] = d.mean(axis=1)
    for i in range(len(idx)):
        j_own = int(np.searchsorted(labels, probe_labels[i]))
        own_count = counts[j_own]
        if own_count <= 1:
            scores[i] = 0.0
            continue
        # Correct the own-cluster mean for the self-distance (0 included).
        a_i = mean_dist[i, j_own] * own_count / (own_count - 1)
        b_i = np.min(np.delete(mean_dist[i], j_own))
        denom = max(a_i, b_i)
        scores[i] = 0.0 if denom == 0 else (b_i - a_i) / denom
    return float(scores.mean())


def davies_bouldin(X: np.ndarray, assignments: np.ndarray,
                   centroids: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better, >= 0).

    ``max_j (s_i + s_j) / d(c_i, c_j)`` averaged over clusters, where s is
    the mean distance of members to their centroid.  Empty clusters are
    skipped.
    """
    X = np.asarray(X, dtype=np.float64)
    a = np.asarray(assignments).ravel()
    C = np.asarray(centroids, dtype=np.float64)
    populated = [j for j in range(C.shape[0]) if (a == j).any()]
    if len(populated) < 2:
        raise ConfigurationError(
            "Davies-Bouldin needs at least 2 populated clusters"
        )
    scatters = np.array([
        np.sqrt(np.maximum(
            squared_distances(X[a == j], C[j:j + 1]), 0.0)).mean()
        for j in populated
    ])
    centres = C[populated]
    sep = np.sqrt(np.maximum(squared_distances(centres, centres), 0.0))
    ratios = np.zeros(len(populated))
    for i in range(len(populated)):
        others = [j for j in range(len(populated)) if j != i]
        ratios[i] = max(
            (scatters[i] + scatters[j]) / sep[i, j]
            for j in others if sep[i, j] > 0
        )
    return float(ratios.mean())
