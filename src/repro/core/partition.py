"""Partition planning: how (n, k, d) maps onto the machine at each level.

A *plan* is the static description the executors run from:

* which compute units exist at this level (CPEs, CPE groups, or CG groups),
* which slice of the dataflow each unit processes,
* which slice of the centroid set / dimension space each unit stores,
* where CG groups are placed on the fat tree (Level 3).

Plans validate twice: first against the paper's aggregate constraints
(C1/C2/C3 per level — see :mod:`repro.core.constraints`), then against the
*exact* per-CPE byte budget by staging the buffer set on the machine's LDM
allocators.  A configuration that passes the paper's algebra but would not
actually fit (slice rounding, counter storage) is rejected at plan time, not
deep inside an executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, PartitionError
from ..machine.machine import Machine
from ._common import even_slices
from .constraints import (
    FeasibilityReport,
    ldm_elements,
    level1_feasibility,
    level2_feasibility,
    level3_feasibility,
)

Slice = Tuple[int, int]

#: LDM staging parameters shared with the performance model: a streamed
#: sample slice needs a double buffer plus one centroid chunk and one
#: accumulator chunk resident at a time.
STREAM_BUFFERS = 4
#: Fixed LDM overhead (stack, control words) in bytes.
LDM_OVERHEAD_BYTES = 1024
#: Fraction of the LDM given to the sample stage when streaming.
STAGE_FRACTION = 0.45


@dataclass(frozen=True)
class StreamingInfo:
    """LDM residency analysis for one plan (see DESIGN.md §5a).

    ``resident_fraction < 1`` means the per-CPE centroid + accumulator
    working set overflows the scratchpad and the non-resident part must be
    re-fetched once per staged sample block.
    """

    resident_fraction: float
    samples_per_stage: int
    n_stages: int
    #: Total centroid bytes DMA'd per CPE per iteration.
    cent_traffic_bytes_per_cpe: float


def streaming_info(d_slice_elems: int, cent_slice_elems: int,
                   count_elems: int, samples_per_unit: int,
                   ldm_bytes: int, itemsize: int) -> StreamingInfo:
    """Residency fraction + per-iteration centroid DMA traffic per CPE.

    Mirrors :meth:`repro.perfmodel.model.PerformanceModel._residency` so the
    execute backend and the analytic model account streaming identically.
    """
    sample_bytes = d_slice_elems * itemsize
    budget = ldm_bytes - LDM_OVERHEAD_BYTES - 2 * sample_bytes
    working = (2 * cent_slice_elems + count_elems) * itemsize
    cent_bytes = cent_slice_elems * itemsize
    if working <= 0:
        return StreamingInfo(1.0, max(1, samples_per_unit), 1, 0.0)
    rf = max(0.0, min(1.0, budget / working))
    if rf >= 1.0:
        return StreamingInfo(1.0, max(1, samples_per_unit), 1,
                             float(cent_bytes))
    stage_bytes = STAGE_FRACTION * ldm_bytes
    per_stage = max(1, int(stage_bytes / max(sample_bytes, 1)))
    n_stages = max(1, _ceil_div(max(samples_per_unit, 1), per_stage))
    traffic = cent_bytes * (1.0 + (n_stages - 1) * (1.0 - rf))
    return StreamingInfo(rf, per_stage, n_stages, float(traffic))


def stream_gate(d_slice_elems: int, ldm_bytes: int, itemsize: int) -> bool:
    """Hard feasibility of streaming: the staging buffers must fit."""
    return STREAM_BUFFERS * d_slice_elems * itemsize <= ldm_bytes


def _itemsize(dtype: np.dtype | type) -> int:
    return np.dtype(dtype).itemsize


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _validate_problem(n: int, k: int, d: int) -> None:
    if n < 1 or k < 1 or d < 1:
        raise ConfigurationError(
            f"n, k, d must all be >= 1, got n={n}, k={k}, d={d}"
        )
    if k > n:
        raise ConfigurationError(f"k={k} exceeds the number of samples n={n}")


# ---------------------------------------------------------------------------
# Level 1
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Level1Plan:
    """n-partition: every CPE holds all k centroids, samples are striped.

    ``units`` is the number of active CPEs (min(total CPEs, n) — a CPE with
    no samples would only add reduction latency).
    """

    n: int
    k: int
    d: int
    dtype: np.dtype
    units: int
    #: (start, stop) sample range per active CPE, in CPE order.
    sample_blocks: List[Slice]
    #: Global CG index of each active CPE.
    cg_of_unit: List[int]
    report: FeasibilityReport

    @property
    def level(self) -> int:
        return 1

    def per_cpe_elements(self) -> int:
        """Exact LDM elements one CPE needs resident."""
        return self.d * (1 + 2 * self.k) + self.k

    def describe(self) -> str:
        return (f"Level-1 plan: n={self.n} k={self.k} d={self.d} over "
                f"{self.units} CPEs "
                f"({len(set(self.cg_of_unit))} CGs active)")


def plan_level1(machine: Machine, n: int, k: int, d: int,
                dtype: np.dtype | type = np.float64) -> Level1Plan:
    """Build and validate a Level-1 plan.

    Raises
    ------
    PartitionError
        If the (k, d) buffer set cannot fit one CPE's LDM.
    """
    _validate_problem(n, k, d)
    dtype = np.dtype(dtype)
    report = level1_feasibility(k, d, machine.spec, dtype)
    if not report.feasible:
        raise PartitionError(
            f"Level 1 infeasible for k={k}, d={d}: "
            + "; ".join(str(c) for c in report.violated())
        )
    exact = d * (1 + 2 * k) + k
    ldm = ldm_elements(machine.ldm_bytes, dtype)
    if exact > ldm:
        raise PartitionError(
            f"Level 1 buffer set ({exact} elements) exceeds the "
            f"{ldm}-element LDM"
        )
    units = min(machine.n_cpes, n)
    cpes_per_cg = machine.cpes_per_cg
    return Level1Plan(
        n=n, k=k, d=d, dtype=dtype, units=units,
        sample_blocks=even_slices(n, units),
        cg_of_unit=[u // cpes_per_cg for u in range(units)],
        report=report,
    )


# ---------------------------------------------------------------------------
# Level 2
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Level2Plan:
    """nk-partition: centroids split over ``mgroup`` CPEs inside one CG.

    Each CG hosts ``cpes_per_cg // mgroup`` CPE groups; leftover CPEs idle.
    Every group holds the full centroid set collectively, one slice per
    member CPE, and processes a contiguous block of the dataflow.
    """

    n: int
    k: int
    d: int
    dtype: np.dtype
    mgroup: int
    #: Number of active CPE groups across the machine.
    n_groups: int
    #: CPE groups per CG.
    groups_per_cg: int
    #: (start, stop) of the centroid slice each group-member CPE owns.
    centroid_slices: List[Slice]
    #: (start, stop) sample range per group, in group order.
    sample_blocks: List[Slice]
    #: Global CG index hosting each group.
    cg_of_group: List[int]
    report: FeasibilityReport
    #: Residency analysis; resident_fraction == 1.0 for resident plans.
    streaming: Optional[StreamingInfo] = None

    @property
    def level(self) -> int:
        return 2

    def cent_traffic_bytes_per_cpe(self) -> float:
        """Per-iteration centroid DMA bytes per member CPE."""
        if self.streaming is not None:
            return self.streaming.cent_traffic_bytes_per_cpe
        widest = max(hi - lo for lo, hi in self.centroid_slices)
        return float(widest * self.d * np.dtype(self.dtype).itemsize)

    def per_cpe_elements(self) -> int:
        """Exact resident elements for the widest member CPE."""
        widest = max(hi - lo for lo, hi in self.centroid_slices)
        return self.d * (1 + 2 * widest) + widest

    def describe(self) -> str:
        return (f"Level-2 plan: n={self.n} k={self.k} d={self.d}, "
                f"mgroup={self.mgroup}, {self.n_groups} CPE groups "
                f"({self.groups_per_cg}/CG)")


def _level2_exact_fits(k: int, d: int, mgroup: int, ldm: int) -> bool:
    """Exact per-CPE feasibility of Level 2 with a given mgroup."""
    k_slice = _ceil_div(k, mgroup)
    return d * (1 + 2 * k_slice) + k_slice <= ldm


def plan_level2(machine: Machine, n: int, k: int, d: int,
                mgroup: Optional[int] = None, streaming: bool = False,
                dtype: np.dtype | type = np.float64) -> Level2Plan:
    """Build and validate a Level-2 plan.

    When ``mgroup`` is None the planner picks the smallest value that fits:
    small mgroup minimises the dataflow read amplification (each member CPE
    of a group re-reads the same sample — the ``n*d*mgroup/m`` term of
    T'read).

    ``streaming=True`` lifts the resident constraint the way the real
    implementation does (DESIGN.md §5a): centroid slices are staged through
    the LDM with double-buffered DMA, so k is bounded only by main memory;
    the plan's :class:`StreamingInfo` carries the resulting re-stream
    traffic and only the staging buffers gate feasibility.

    Raises
    ------
    PartitionError
        If no mgroup in [1, cpes-per-CG] fits (resident mode), or the
        staging buffers for a d-element sample cannot fit (streaming mode).
    """
    _validate_problem(n, k, d)
    dtype = np.dtype(dtype)
    itemsize = dtype.itemsize
    cpes = machine.cpes_per_cg
    ldm = ldm_elements(machine.ldm_bytes, dtype)

    if streaming:
        if not stream_gate(d, machine.ldm_bytes, itemsize):
            raise PartitionError(
                f"Level 2 streaming infeasible: {STREAM_BUFFERS} staging "
                f"buffers of d={d} elements exceed the "
                f"{machine.ldm_bytes} B LDM"
            )
        if mgroup is None:
            mgroup = cpes  # maximum centroid sharing
        elif not 1 <= mgroup <= cpes:
            raise ConfigurationError(
                f"mgroup must be in [1, {cpes}], got {mgroup}"
            )
    elif 3 * d + 1 > ldm:
        raise PartitionError(
            f"Level 2 infeasible: a full sample (d={d}) cannot fit one LDM "
            f"(C2': 3d+1={3 * d + 1} > {ldm} elements)"
        )
    elif mgroup is None:
        fitted = next(
            (m for m in range(1, cpes + 1) if _level2_exact_fits(k, d, m, ldm)),
            None,
        )
        if fitted is None:
            raise PartitionError(
                f"Level 2 infeasible for k={k}, d={d}: even mgroup={cpes} "
                f"CPEs per group cannot hold the centroid slices "
                f"(pass streaming=True to stage them through the LDM)"
            )
        mgroup = fitted
    else:
        if not 1 <= mgroup <= cpes:
            raise ConfigurationError(
                f"mgroup must be in [1, {cpes}], got {mgroup}"
            )
        if not _level2_exact_fits(k, d, mgroup, ldm):
            raise PartitionError(
                f"Level 2 infeasible with mgroup={mgroup} for k={k}, d={d}"
            )

    report = level2_feasibility(k, d, min(mgroup, cpes), machine.spec, dtype)
    groups_per_cg = cpes // mgroup
    n_groups = min(machine.n_cgs * groups_per_cg, n)
    if n_groups < 1:
        raise PartitionError("Level 2 plan has no active CPE groups")
    sample_blocks = even_slices(n, n_groups)
    info = None
    if streaming:
        widest_k = _ceil_div(k, mgroup)
        widest_block = max(hi - lo for lo, hi in sample_blocks)
        info = streaming_info(
            d_slice_elems=d,
            cent_slice_elems=widest_k * d,
            count_elems=widest_k,
            samples_per_unit=widest_block,
            ldm_bytes=machine.ldm_bytes,
            itemsize=itemsize,
        )
    return Level2Plan(
        n=n, k=k, d=d, dtype=dtype, mgroup=mgroup,
        n_groups=n_groups, groups_per_cg=groups_per_cg,
        centroid_slices=even_slices(k, mgroup),
        sample_blocks=sample_blocks,
        cg_of_group=[g // groups_per_cg for g in range(n_groups)],
        report=report,
        streaming=info,
    )


# ---------------------------------------------------------------------------
# Level 3
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Level3Plan:
    """nkd-partition: d over a CG's CPEs, k over m'group CGs, n over CG groups.

    ``cg_groups[g]`` lists the global CG indices of group ``g``; member ``j``
    of every group owns centroid slice ``centroid_slices[j]``.  Each CPE of a
    CG owns dimension slice ``dim_slices[cpe]`` of both the streamed sample
    and the CG's centroid slice.
    """

    n: int
    k: int
    d: int
    dtype: np.dtype
    mprime_group: int
    n_groups: int
    #: (start, stop) centroid range per group-member CG.
    centroid_slices: List[Slice]
    #: (start, stop) dimension range per CPE of a CG.
    dim_slices: List[Slice]
    #: (start, stop) sample range per CG group.
    sample_blocks: List[Slice]
    #: Global CG indices per group (placement on the machine).
    cg_groups: List[List[int]]
    report: FeasibilityReport
    supernode_aware: bool = True
    #: Residency analysis; resident_fraction == 1.0 for resident plans.
    streaming: Optional[StreamingInfo] = None

    @property
    def level(self) -> int:
        return 3

    def cent_traffic_bytes_per_cpe(self) -> float:
        """Per-iteration centroid DMA bytes per CPE of a member CG."""
        if self.streaming is not None:
            return self.streaming.cent_traffic_bytes_per_cpe
        widest_k = max(hi - lo for lo, hi in self.centroid_slices)
        widest_d = max(hi - lo for lo, hi in self.dim_slices)
        return float(widest_k * widest_d * np.dtype(self.dtype).itemsize)

    def per_cpe_elements(self) -> int:
        """Exact resident elements for the widest (dims x centroids) CPE."""
        widest_k = max(hi - lo for lo, hi in self.centroid_slices)
        widest_d = max(hi - lo for lo, hi in self.dim_slices)
        return widest_d * (1 + 2 * widest_k) + widest_k

    def describe(self) -> str:
        return (f"Level-3 plan: n={self.n} k={self.k} d={self.d}, "
                f"m'group={self.mprime_group}, {self.n_groups} CG groups, "
                f"supernode_aware={self.supernode_aware}")


def _level3_exact_fits(k: int, d: int, mprime: int, cpes: int,
                       ldm: int) -> bool:
    k_slice = _ceil_div(k, mprime)
    d_slice = _ceil_div(d, cpes)
    return d_slice * (1 + 2 * k_slice) + k_slice <= ldm


def plan_level3(machine: Machine, n: int, k: int, d: int,
                mprime_group: Optional[int] = None,
                supernode_aware: bool = True, streaming: bool = False,
                dtype: np.dtype | type = np.float64) -> Level3Plan:
    """Build and validate a Level-3 plan.

    When ``mprime_group`` is None the planner picks the smallest group size
    whose per-CPE buffers fit — minimising the ``n*d*m'group/m`` read
    amplification — and caps it at the machine's CG count.

    ``streaming=True`` (DESIGN.md §5a) stages centroid slices through the
    LDM when they cannot be resident, so k*d is bounded by main memory
    rather than the aggregate scratchpad; the plan records the re-stream
    traffic in :class:`StreamingInfo`.

    Raises
    ------
    PartitionError
        If even one CG per sample (C2'') or the whole machine's worth of CGs
        per group (C1''/C3'') cannot hold the problem (resident mode), or
        the staging buffers cannot fit (streaming mode).
    """
    _validate_problem(n, k, d)
    dtype = np.dtype(dtype)
    itemsize = dtype.itemsize
    cpes = machine.cpes_per_cg
    ldm = ldm_elements(machine.ldm_bytes, dtype)
    n_cgs = machine.n_cgs
    d_slice = _ceil_div(d, cpes)

    if streaming:
        if not stream_gate(d_slice, machine.ldm_bytes, itemsize):
            raise PartitionError(
                f"Level 3 streaming infeasible: {STREAM_BUFFERS} staging "
                f"buffers of d/{cpes}={d_slice} elements exceed the "
                f"{machine.ldm_bytes} B LDM"
            )
    elif 3 * d_slice > ldm:
        raise PartitionError(
            f"Level 3 infeasible: a sample slice of d/{cpes} dims cannot fit "
            f"one LDM (d={d}, LDM={ldm} elements)"
        )

    if mprime_group is None:
        fitted = next(
            (m for m in range(1, n_cgs + 1)
             if _level3_exact_fits(k, d, m, cpes, ldm)),
            None,
        )
        if fitted is None:
            if streaming:
                # Use every CG for one group; the rest streams.
                fitted = min(n_cgs, k)
            else:
                raise PartitionError(
                    f"Level 3 infeasible for k={k}, d={d} on {n_cgs} CGs: "
                    f"centroid slices cannot fit even with m'group={n_cgs} "
                    f"(pass streaming=True to stage them through the LDM)"
                )
        mprime_group = fitted
    else:
        if not 1 <= mprime_group <= n_cgs:
            raise ConfigurationError(
                f"m'group must be in [1, {n_cgs}], got {mprime_group}"
            )
        if not streaming and not _level3_exact_fits(k, d, mprime_group,
                                                    cpes, ldm):
            raise PartitionError(
                f"Level 3 infeasible with m'group={mprime_group} "
                f"for k={k}, d={d}"
            )

    report = level3_feasibility(k, d, mprime_group, machine.spec, dtype)
    n_groups = min(n_cgs // mprime_group, n)
    if n_groups < 1:
        raise PartitionError(
            f"Level 3 needs m'group={mprime_group} CGs per group but the "
            f"machine only has {n_cgs} CGs"
        )
    cg_groups = machine.place_cg_groups(mprime_group, n_groups,
                                        supernode_aware=supernode_aware)
    sample_blocks = even_slices(n, n_groups)
    info = None
    if streaming:
        widest_k = _ceil_div(k, mprime_group)
        widest_block = max(hi - lo for lo, hi in sample_blocks)
        info = streaming_info(
            d_slice_elems=d_slice,
            cent_slice_elems=widest_k * d_slice,
            count_elems=widest_k,
            samples_per_unit=widest_block,
            ldm_bytes=machine.ldm_bytes,
            itemsize=itemsize,
        )
    return Level3Plan(
        n=n, k=k, d=d, dtype=dtype, mprime_group=mprime_group,
        n_groups=n_groups,
        centroid_slices=even_slices(k, mprime_group),
        dim_slices=even_slices(d, cpes),
        sample_blocks=sample_blocks,
        cg_groups=cg_groups,
        report=report,
        supernode_aware=supernode_aware,
        streaming=info,
    )


# ---------------------------------------------------------------------------
# LDM staging (exact byte-level verification)
# ---------------------------------------------------------------------------

def stage_level1(plan: Level1Plan, machine: Machine) -> None:
    """Allocate Level-1 buffers on every active CPE's LDM allocator.

    Raises LDMOverflowError if the byte budget is exceeded — by construction
    it never should be once plan_level1 succeeded; staging is the
    belt-and-braces check used by tests and the execute backend.
    """
    machine.reset_ldm()
    item = _itemsize(plan.dtype)
    cpes_per_cg = machine.cpes_per_cg
    for unit in range(plan.units):
        cg = machine.core_group(plan.cg_of_unit[unit])
        cpe = cg.cpe(unit % cpes_per_cg)
        cpe.ldm.alloc("sample", plan.d * item)
        cpe.ldm.alloc("centroids", plan.k * plan.d * item)
        cpe.ldm.alloc("sums", plan.k * plan.d * item)
        cpe.ldm.alloc("counts", plan.k * item)


def _stage_streaming_buffers(cpe, d_slice_elems: int, item: int) -> None:
    """The streaming buffer set: sample double-buffer + chunk buffers."""
    cpe.ldm.alloc("sample_stage_a", d_slice_elems * item)
    cpe.ldm.alloc("sample_stage_b", d_slice_elems * item)
    cpe.ldm.alloc("centroid_chunk", d_slice_elems * item)
    cpe.ldm.alloc("sums_chunk", d_slice_elems * item)


def stage_level2(plan: Level2Plan, machine: Machine) -> None:
    """Allocate Level-2 buffers: full sample + a centroid slice per CPE.

    Streaming plans whose working set is not fully resident stage the
    double-buffered streaming set instead (DESIGN.md §5a).
    """
    machine.reset_ldm()
    item = _itemsize(plan.dtype)
    streamed = (plan.streaming is not None
                and plan.streaming.resident_fraction < 1.0)
    for g in range(plan.n_groups):
        cg = machine.core_group(plan.cg_of_group[g])
        base = (g % plan.groups_per_cg) * plan.mgroup
        for member, (lo, hi) in enumerate(plan.centroid_slices):
            k_slice = hi - lo
            cpe = cg.cpe(base + member)
            if streamed:
                _stage_streaming_buffers(cpe, plan.d, item)
                continue
            cpe.ldm.alloc("sample", plan.d * item)
            if k_slice:
                cpe.ldm.alloc("centroid_slice", k_slice * plan.d * item)
                cpe.ldm.alloc("sums_slice", k_slice * plan.d * item)
                cpe.ldm.alloc("counts_slice", k_slice * item)


def stage_level3(plan: Level3Plan, machine: Machine) -> None:
    """Allocate Level-3 buffers: dim slice of sample + (k-slice x dim-slice).

    Streaming plans whose working set is not fully resident stage the
    double-buffered streaming set instead (DESIGN.md §5a).
    """
    machine.reset_ldm()
    item = _itemsize(plan.dtype)
    streamed = (plan.streaming is not None
                and plan.streaming.resident_fraction < 1.0)
    for g, members in enumerate(plan.cg_groups):
        for member, cg_index in enumerate(members):
            lo_k, hi_k = plan.centroid_slices[member]
            k_slice = hi_k - lo_k
            cg = machine.core_group(cg_index)
            for cpe_i, (lo_d, hi_d) in enumerate(plan.dim_slices):
                d_slice = hi_d - lo_d
                cpe = cg.cpe(cpe_i)
                if streamed:
                    if d_slice:
                        _stage_streaming_buffers(cpe, d_slice, item)
                    continue
                if d_slice:
                    cpe.ldm.alloc("sample_slice", d_slice * item)
                if k_slice and d_slice:
                    cpe.ldm.alloc("centroid_slice",
                                  k_slice * d_slice * item)
                    cpe.ldm.alloc("sums_slice", k_slice * d_slice * item)
                if k_slice:
                    cpe.ldm.alloc("counts_slice", k_slice * item)
