"""Level 2 executor — dataflow + centroid (nk) partition, Algorithm 2.

``mgroup`` CPEs inside a core group form a *CPE group* that collectively
holds the centroid set, one slice per member.  Every member reads the same
sample, computes a partial nearest-centroid over its slice (a(i)'), and a
MINLOC reduction over the group produces the global a(i).  Accumulators are
sliced the same way; updating them needs an AllReduce per slice across all
CPE groups.

This reproduces the two-level-memory design of Bender et al. on Trinity —
including its failure mode: the full sample must still fit one CPE's LDM
(constraint C2), so d cannot scale past the scratchpad no matter how many
cores are added.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..machine.machine import Machine
from ..runtime.compute import distance_flops
from ..runtime.dma import DMAEngine
from ..runtime.mpi import SimComm
from ..runtime.reduce import scatter_labels
from ..runtime.regcomm import RegisterComm
from .block_tasks import (
    FusedAssignTask,
    StrictL2Task,
    fused_assign_block,
    kernel_token,
    strict_l2_assign,
    strict_l2_block,
)
from .executor_base import LevelExecutor
from .partition import Level2Plan, plan_level2
from .result import KMeansResult


class Level2Executor(LevelExecutor):
    """Simulated execution of the nk-partition algorithm."""

    level = 2

    def __init__(self, machine: Machine, plan: Optional[Level2Plan] = None,
                 mgroup: Optional[int] = None, streaming: bool = False,
                 **kwargs) -> None:
        super().__init__(machine, **kwargs)
        self._plan = plan
        self._mgroup_request = mgroup
        self._streaming = bool(streaming)
        self._itemsize = 8
        self._regcomm = RegisterComm(machine.spec.processor.cg, self.ledger,
                                     injector=self.injector)
        self._dma = DMAEngine(machine.spec.processor.cg, self.ledger,
                              injector=self.injector)
        self._comm: Optional[SimComm] = None
        self._groups_by_cg: Dict[int, List[int]] = {}

    @property
    def plan(self) -> Level2Plan:
        if self._plan is None:
            raise RuntimeError("executor has not been set up yet")
        return self._plan

    # -- setup ---------------------------------------------------------------

    def setup(self, X: np.ndarray, C: np.ndarray) -> None:
        n, d = X.shape
        k = C.shape[0]
        if self._plan is None:
            self._plan = plan_level2(self.machine, n, k, d,
                                     mgroup=self._mgroup_request,
                                     streaming=self._streaming,
                                     dtype=X.dtype)
        plan = self._plan
        self._itemsize = np.dtype(plan.dtype).itemsize

        by_cg: Dict[int, List[int]] = defaultdict(list)
        for g in range(plan.n_groups):
            by_cg[plan.cg_of_group[g]].append(g)
        self._groups_by_cg = dict(by_cg)

        active_cgs = sorted(self._groups_by_cg)
        self._comm = SimComm(self.machine, active_cgs, self.ledger,
                             self.collective_algorithm,
                             injector=self.injector)
        # Initial scatter of centroid slices to every group member.
        if self.model_costs:
            self.ledger.charge(
                "network", "l2.setup.scatter_centroids",
                self._comm.bcast_time(k * d * self._itemsize),
            )

    # -- one iteration ------------------------------------------------------------

    def _assign_block(self, block: np.ndarray, C: np.ndarray) -> np.ndarray:
        """Assignment of one group's block, strict or fast path.

        Strict mode mirrors the hardware dataflow: each member CPE computes
        distances over its centroid slice and a slice-local argmin (line 9's
        a(i)'), then a MINLOC reduction (line 10) combines the mgroup partial
        winners.  Fast mode computes the same argmin in one vectorised pass.
        """
        if not self.strict_cpe:
            return self.kernel.assign(block, C)
        return self._strict_assign_block(block, C)[0]

    def _strict_assign_block(self, block: np.ndarray, C: np.ndarray
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """Strict dataflow winner (index, squared distance) per sample.

        The math lives in :func:`repro.core.block_tasks.strict_l2_assign`
        (module-level so the process engine can ship it inside tasks);
        this method binds the executor's plan.
        """
        return strict_l2_assign(block, C, self.plan.centroid_slices)

    def iterate(self, X: np.ndarray, C: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        plan = self.plan
        n, d = X.shape
        k = C.shape[0]
        item = self._itemsize
        assert self._comm is not None
        widest_slice = max(hi - lo for lo, hi in plan.centroid_slices)

        assignments = np.empty(n, dtype=np.int64)
        best_d2 = np.empty(n, dtype=X.dtype)

        # ---- Assign phase: numerics fan out over the execution engine ----
        # Module-level block tasks (picklable for the process engine;
        # operands travel by share()) return compact partials, merged in
        # fixed group order below, so the result is engine-independent;
        # labels scatter back in fixed group order.
        # The merge mirrors the hardware hierarchy: partials reduce within
        # each CG first, then across CGs in sorted-CG order — a grouped
        # topology whose schedule depends only on the group layout.  The
        # per-group partials also feed the accumulate cost model below.
        topology = self.reduce.for_groups(
            [self._groups_by_cg[cg] for cg in sorted(self._groups_by_cg)])
        pruned = not self.strict_cpe and self.kernel.name == "pruned"
        if pruned:
            # Same block boundaries and topology; the tasks additionally
            # carry the per-sample bound state (see executor_base).
            merged, partials = self._pruned_map_reduce(
                X, C, plan.sample_blocks, topology)
        else:
            x_ref = self.engine.share("X", X)
            c_ref = self.engine.share("C", C)
            if self.strict_cpe:
                tasks: List[object] = [
                    StrictL2Task(x_ref, c_ref, lo, hi, k,
                                 plan.centroid_slices)
                    for lo, hi in plan.sample_blocks]
                block_fn = strict_l2_block
            else:
                token = kernel_token(self.kernel)
                tasks = [FusedAssignTask(x_ref, c_ref, lo, hi, token)
                         for lo, hi in plan.sample_blocks]
                block_fn = fused_assign_block
            merged, partials = self.engine.map_reduce(
                block_fn, tasks, topology=topology, return_partials=True)
        global_sums, global_counts = merged.sums, merged.counts
        scatter_labels(partials, assignments, best_d2)
        self._iter_inertia = float(best_d2.sum() / n)

        # ---- cost model (fixed CG/group order, independent of the engine) ----
        if self.model_costs:
            dma_times: List[float] = []
            compute_times: List[float] = []
            accumulate_times: List[float] = []
            for cg_index, groups in sorted(self._groups_by_cg.items()):
                cg_bytes = 0
                for g in groups:
                    lo, hi = plan.sample_blocks[g]
                    b = hi - lo
                    # Every member CPE streams the whole block (the
                    # n*d*mgroup/m amplification of T'read) plus its centroid
                    # slice traffic (slice bytes once when resident,
                    # re-streamed per stage otherwise — see StreamingInfo).
                    cg_bytes += (b * d * plan.mgroup) * item \
                        + plan.mgroup * plan.cent_traffic_bytes_per_cpe()
                    # Member CPEs work concurrently, each over its slice.
                    if pruned:
                        # The group's actual evaluations split over the
                        # mgroup slice owners; each pays its widest-slice
                        # share plus 2 flops/sample of bound tests.  DMA
                        # is unchanged: the block still streams in full.
                        flops = (3.0 * partials[g].n_dist * d
                                 * widest_slice / k + 2.0 * b)
                    else:
                        flops = float(distance_flops(b, widest_slice, d))
                    compute_times.append(self.compute.time_for_flops(
                        flops, n_cpes=1))
                    # Accumulation load per member = samples assigned to its
                    # slice; the critical path is the most loaded member.
                    counts = partials[g].counts
                    slice_loads = [
                        int(counts[s_lo:s_hi].sum()) * d
                        for s_lo, s_hi in plan.centroid_slices
                    ]
                    accumulate_times.append(self.compute.time_for_flops(
                        max(slice_loads), n_cpes=1))
                dma_times.append(self._dma.transfer_time(cg_bytes))
            self.charge_stream_phases("l2.assign", dma_times, compute_times)

            # MINLOC over each CPE group (line 10): one (value, index) pair
            # per sample travels the mesh buses; groups operate concurrently.
            max_block = max(hi - lo for lo, hi in plan.sample_blocks)
            self.ledger.charge("regcomm", "l2.assign.minloc",
                               self._regcomm.allreduce_time(max_block * 16))

            self.ledger.charge_parallel("compute", "l2.update.accumulate",
                                        accumulate_times)

        # ---- Update phase: two-stage AllReduce of sliced accumulators ----
        # Both stages already ran (in this exact hierarchical order) inside
        # map_reduce; here each stage's modelled cost is charged.
        # allreduce_time fires the same fault-injection probe, with the
        # same label and payload, as the data-carrying collective it
        # prices.
        payload = (k * d + k) * item
        if self.model_costs:
            self.ledger.charge("regcomm", "l2.update.intra_cg_allreduce",
                               self._regcomm.allreduce_time(payload))
        if self._comm.size > 1:
            self.ledger.charge(
                "network", "l2.update.inter_cg_allreduce.sums",
                self._comm.allreduce_time(
                    global_sums.nbytes,
                    label="l2.update.inter_cg_allreduce.sums"))
            self.ledger.charge(
                "network", "l2.update.inter_cg_allreduce.counts",
                self._comm.allreduce_time(
                    global_counts.nbytes,
                    label="l2.update.inter_cg_allreduce.counts"))

        # Divide: each member CPE finishes its own slice.
        if self.model_costs:
            self.ledger.charge("compute", "l2.update.divide",
                               self.compute.time_for_flops(widest_slice * d,
                                                           n_cpes=1))
        new_C = self.update_step(global_sums, global_counts, C,
                                 X=X, best_d2=best_d2)
        if pruned:
            # Last act of the iteration — after every fault-prone charge —
            # so a faulted iteration never half-commits bound state.
            self._commit_pruned_state(C, assignments, best_d2, partials)
        return assignments, new_C


def run_level2(X: np.ndarray, centroids: np.ndarray, machine: Machine,
               mgroup: Optional[int] = None, max_iter: int = 100,
               tol: float = 0.0, **executor_kwargs: object) -> KMeansResult:
    """Convenience wrapper: plan, execute, and return the result."""
    executor = Level2Executor(machine, mgroup=mgroup, **executor_kwargs)
    return executor.run(X, centroids, max_iter=max_iter, tol=tol)
