"""The paper's LDM feasibility constraints C1/C2/C3 per partition level.

All constraints are stated in *elements* (the paper's unit): an LDM of 64 KB
holds ``65536 / itemsize`` elements.  The buffer set a CPE must hold is

* one sample slice       — ``d`` elements at Level 1/2, ``d/64`` at Level 3,
* the centroid slice     — ``k*d`` at Level 1, ``k*d/mgroup`` at Level 2, ...
* the accumulator slice  — same size as the centroid slice,
* the counter slice      — ``k`` (or the level's slice of it).

The paper expresses these aggregated over the group, e.g. Level 2's
``C1': d(1+2k)+k <= mgroup * LDM``; we implement the aggregated forms
verbatim plus the per-CPE forms used by the LDM allocator.

Also included: Bender et al.'s two-level-memory window ``Z < k*d < M``
(section II.B.4), needed to reproduce the related-work comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..machine.specs import MachineSpec


def ldm_elements(ldm_bytes: int, dtype: np.dtype | type = np.float64) -> int:
    """LDM capacity in elements of ``dtype``."""
    itemsize = np.dtype(dtype).itemsize
    return ldm_bytes // itemsize


@dataclass(frozen=True)
class ConstraintCheck:
    """Outcome of one constraint evaluation."""

    name: str
    satisfied: bool
    #: Left-hand side (required elements) and right-hand side (available).
    required: int
    available: int

    def __str__(self) -> str:
        mark = "ok" if self.satisfied else "VIOLATED"
        return f"{self.name}: {self.required} <= {self.available} [{mark}]"


@dataclass(frozen=True)
class FeasibilityReport:
    """All constraint checks for one (level, n, k, d, machine) combination."""

    level: int
    checks: List[ConstraintCheck]

    @property
    def feasible(self) -> bool:
        return all(c.satisfied for c in self.checks)

    def violated(self) -> List[ConstraintCheck]:
        return [c for c in self.checks if not c.satisfied]

    def __str__(self) -> str:
        head = f"Level {self.level}: {'feasible' if self.feasible else 'infeasible'}"
        return "\n".join([head] + [f"  {c}" for c in self.checks])


def _check(name: str, required: int, available: int) -> ConstraintCheck:
    return ConstraintCheck(name=name, satisfied=required <= available,
                           required=int(required), available=int(available))


def _validate_nkd(k: int, d: int) -> None:
    if k < 1 or d < 1:
        raise ConfigurationError(f"k and d must be >= 1, got k={k}, d={d}")


def level1_feasibility(k: int, d: int, spec: MachineSpec,
                       dtype: np.dtype | type = np.float64
                       ) -> FeasibilityReport:
    """Level 1 (n-partition): a CPE holds one sample and ALL k centroids.

    C1: d(1+2k)+k <= LDM,  C2: 3d+1 <= LDM,  C3: 3k+1 <= LDM.
    """
    _validate_nkd(k, d)
    ldm = ldm_elements(spec.ldm_bytes_per_cpe, dtype)
    return FeasibilityReport(level=1, checks=[
        _check("C1", d * (1 + 2 * k) + k, ldm),
        _check("C2", 3 * d + 1, ldm),
        _check("C3", 3 * k + 1, ldm),
    ])


def level2_feasibility(k: int, d: int, mgroup: int, spec: MachineSpec,
                       dtype: np.dtype | type = np.float64
                       ) -> FeasibilityReport:
    """Level 2 (nk-partition): k split over ``mgroup <= 64`` CPEs of one CG.

    C1': d(1+2k)+k <= mgroup*LDM,  C2' = C2,  C3': 3k+1 <= mgroup*LDM.
    """
    _validate_nkd(k, d)
    max_group = spec.processor.cg.n_cpes
    if not 1 <= mgroup <= max_group:
        raise ConfigurationError(
            f"mgroup must be in [1, {max_group}], got {mgroup}"
        )
    ldm = ldm_elements(spec.ldm_bytes_per_cpe, dtype)
    return FeasibilityReport(level=2, checks=[
        _check("C1'", d * (1 + 2 * k) + k, mgroup * ldm),
        _check("C2'", 3 * d + 1, ldm),
        _check("C3'", 3 * k + 1, mgroup * ldm),
    ])


def level3_feasibility(k: int, d: int, mprime_group: int, spec: MachineSpec,
                       dtype: np.dtype | type = np.float64
                       ) -> FeasibilityReport:
    """Level 3 (nkd-partition): d split over a CG's CPEs, k over m'group CGs.

    C1'': d(1+2k)+k <= 64*m'group*LDM,  C2'': 3d+1 <= 64*LDM,
    C3'': 3k+1 <= m'group*64*LDM.
    """
    _validate_nkd(k, d)
    if mprime_group < 1:
        raise ConfigurationError(
            f"m'group must be >= 1, got {mprime_group}"
        )
    if mprime_group > spec.n_cgs:
        raise ConfigurationError(
            f"m'group={mprime_group} exceeds the machine's {spec.n_cgs} CGs"
        )
    cpes = spec.processor.cg.n_cpes
    ldm = ldm_elements(spec.ldm_bytes_per_cpe, dtype)
    return FeasibilityReport(level=3, checks=[
        _check("C1''", d * (1 + 2 * k) + k, cpes * mprime_group * ldm),
        _check("C2''", 3 * d + 1, cpes * ldm),
        _check("C3''", 3 * k + 1, mprime_group * cpes * ldm),
    ])


def max_feasible_k_level1(d: int, spec: MachineSpec,
                          dtype: np.dtype | type = np.float64) -> int:
    """Largest k satisfying Level 1's C1 for a given d (0 if even k=1 fails)."""
    ldm = ldm_elements(spec.ldm_bytes_per_cpe, dtype)
    if 3 * d + 1 > ldm:
        return 0
    # d(1+2k)+k <= ldm  =>  k <= (ldm - d) / (2d + 1)
    return max((ldm - d) // (2 * d + 1), 0)


def min_mgroup_level2(k: int, d: int, spec: MachineSpec,
                      dtype: np.dtype | type = np.float64) -> int | None:
    """Smallest mgroup in [1, 64] making Level 2 feasible, or None."""
    _validate_nkd(k, d)
    for mgroup in range(1, spec.processor.cg.n_cpes + 1):
        if level2_feasibility(k, d, mgroup, spec, dtype).feasible:
            return mgroup
    return None


def min_mprime_group_level3(k: int, d: int, spec: MachineSpec,
                            dtype: np.dtype | type = np.float64) -> int | None:
    """Smallest m'group making Level 3 feasible on this machine, or None."""
    _validate_nkd(k, d)
    cpes = spec.processor.cg.n_cpes
    ldm = ldm_elements(spec.ldm_bytes_per_cpe, dtype)
    if 3 * d + 1 > cpes * ldm:
        return None
    # Solve C1'' for m'group, then verify all constraints at that value.
    per_group = cpes * ldm
    need = d * (1 + 2 * k) + k
    m = max(1, -(-need // per_group))  # ceil division
    if m > spec.n_cgs:
        return None
    report = level3_feasibility(k, d, m, spec, dtype)
    return m if report.feasible else None


def bender_window(k: int, d: int, cache_elements: int,
                  scratchpad_elements: int) -> bool:
    """Bender et al.'s two-level memory constraint ``Z < k*d < M``.

    Their partition-based method needs the centroid set to overflow the
    cache (otherwise the recursion is pointless) but fit the scratchpad —
    the interaction constraint the paper's Level 3 removes.
    """
    if cache_elements <= 0 or scratchpad_elements <= cache_elements:
        raise ConfigurationError(
            "need 0 < cache_elements < scratchpad_elements, got "
            f"Z={cache_elements}, M={scratchpad_elements}"
        )
    kd = k * d
    return cache_elements < kd < scratchpad_elements
