"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the available experiments (one per paper table/figure).
``experiment <id> [--out DIR]``
    Regenerate one table/figure (or ``all``), print the report, and flag
    any failed shape check (non-zero exit).  ``--out`` also persists the
    report, checks and series CSV.
``predict --level L -n N -k K -d D [--nodes NODES]``
    Price one iteration with the performance model at paper scale.
``cluster --n N --k K --d D [--nodes NODES] [--level L] [--save PATH]``
    Run the execute backend on a synthetic workload — or on your own data
    via ``--input data.npy`` / ``--input data.csv`` — and print the result
    summary and time-ledger breakdown.  ``--kernel gemm`` switches the
    assign arithmetic to the blocked GEMM backend (``--kernel pruned``
    adds carried triangle-inequality bounds, bit-identical to gemm);
    ``--engine thread``
    (optionally with ``--workers N``) maps the numerics across a host
    thread pool with bit-identical results; ``--no-model-costs`` runs
    pure numerics without the simulated time ledger.
    ``--faults 'cg_failure@3:cg=1' --recovery replan --checkpoint-every 5``
    injects machine faults and exercises the recovery policies.
    ``--checkpoint-dir DIR`` persists every snapshot durably so a killed
    run restarts bit-identically with ``--resume``; ``--deadline S``
    bounds the *real* wall-clock time (exit code 3 when exceeded).
``machine [--nodes NODES]``
    Render the simulated machine (the paper's Figure-1 block diagram plus
    the fleet summary).
``calibrate [--nodes NODES]``
    Fit the model's compute-efficiency and message-overhead constants to
    execute-backend measurements on a toy machine (see
    ``repro.perfmodel.calibration``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .data.synthetic import gaussian_blobs
from .errors import DeadlineExceededError, ReproError
from .experiments import EXPERIMENTS, EXTRA_EXPERIMENTS, run_experiment
from .machine.machine import sunway_machine, toy_machine
from .machine.specs import sunway_spec
from .perfmodel.model import PerformanceModel
from .reporting.tables import format_seconds


def _cmd_list(_: argparse.Namespace) -> int:
    for exp_id in EXPERIMENTS:
        print(exp_id)
    for exp_id in EXTRA_EXPERIMENTS:
        print(f"{exp_id}  (extension)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = list(EXPERIMENTS) if args.id == "all" else [args.id]
    status = 0
    for exp_id in ids:
        output = run_experiment(exp_id)
        print(output.text)
        print()
        for name, ok in output.checks.items():
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        print()
        if args.out:
            from .io import save_experiment
            save_experiment(output, args.out)
        if not output.all_checks_pass:
            status = 1
    return status


def _cmd_predict(args: argparse.Namespace) -> int:
    model = PerformanceModel(sunway_spec(args.nodes))
    pred = model.predict(args.level, args.n, args.k, args.d)
    if not pred.feasible:
        print(f"infeasible: {pred.reason}")
        return 1
    print(f"level {pred.level} on {args.nodes} nodes: "
          f"{format_seconds(pred.total)} per iteration")
    print(f"  partition: mgroup={pred.mgroup}, m'group={pred.mprime_group}, "
          f"groups={pred.n_groups}, resident={pred.resident_fraction:.2f}")
    for phase, seconds in pred.phases.items():
        print(f"  {phase:28s} {format_seconds(seconds)}")
    return 0


def _load_input(path: str):
    """Load a (n, d) sample matrix from .npy or .csv."""
    import numpy as np

    from .errors import ConfigurationError
    if path.endswith(".npy"):
        X = np.load(path)
    elif path.endswith(".csv"):
        X = np.loadtxt(path, delimiter=",", ndmin=2)
    else:
        raise ConfigurationError(
            f"unsupported input format {path!r} (expected .npy or .csv)"
        )
    if X.ndim != 2:
        raise ConfigurationError(
            f"input must be a 2-D (n, d) matrix, got shape {X.shape}"
        )
    return np.asarray(X, dtype=np.float64)


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.toy:
        machine = toy_machine(n_nodes=args.nodes, cgs_per_node=2, mesh=4,
                              ldm_bytes=16 * 1024)
    else:
        machine = sunway_machine(n_nodes=args.nodes)
    if args.input:
        X = _load_input(args.input)
    else:
        X, _ = gaussian_blobs(n=args.n, k=args.k, d=args.d, seed=args.seed)
    from .core.kmeans import HierarchicalKMeans
    level = "auto" if args.level is None else args.level
    model = HierarchicalKMeans(args.k, machine=machine, level=level,
                               seed=args.seed, max_iter=args.max_iter,
                               kernel=args.kernel,
                               engine=args.engine, workers=args.workers,
                               reduce=args.reduce,
                               integrity=args.integrity,
                               model_costs=not args.no_model_costs,
                               faults=args.faults,
                               recovery=args.recovery,
                               checkpoint_every=args.checkpoint_every,
                               checkpoint_dir=args.checkpoint_dir,
                               resume=args.resume,
                               deadline_s=args.deadline,
                               empty_action=args.empty_action)
    result = model.fit(X)
    print(result.summary())
    if result.ledger is not None:
        for category, seconds in result.ledger.total_by_category().items():
            print(f"  {category:8s} {format_seconds(seconds)}")
    for event in result.fault_events:
        where = f" CG {event.cg_index}" if event.cg_index is not None else ""
        print(f"  fault: {event.kind}{where} at iteration "
              f"{event.iteration} -> {event.action} "
              f"({format_seconds(event.recovery_seconds)} recovery)")
    for host_event in result.host_events:
        print(f"  host: {host_event.describe()}")
    if args.save:
        from .io import save_result
        save_result(result, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_machine(args: argparse.Namespace) -> int:
    from .machine.render import render_machine, render_processor
    spec = sunway_spec(args.nodes)
    print(render_processor(spec))
    print()
    print(render_machine(spec))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .machine.machine import toy_machine as _toy
    from .perfmodel.calibration import calibrate
    machine = _toy(n_nodes=args.nodes, cgs_per_node=2, mesh=4,
                   ldm_bytes=64 * 1024)
    result = calibrate(machine)
    print(f"RMS log10 error: {result.error_before:.3f} -> "
          f"{result.error_after:.3f}")
    print(f"fitted compute_efficiency   = "
          f"{result.params.compute_efficiency}")
    print(f"fitted mpi_message_overhead = "
          f"{result.params.mpi_message_overhead}")
    for (level, w_i), ratio in sorted(result.ratios.items()):
        print(f"  level {level}, workload {w_i}: model/measured = "
              f"{ratio:.2f}x")
    return 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from .experiments import build_scorecard
    card = build_scorecard(include_extras=not args.skip_extras)
    print(card.render())
    return 0 if card.all_pass else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Large-Scale Hierarchical k-means for "
                     "Heterogeneous Many-Core Supercomputers' (SC 2018)"),
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_exp = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    p_exp.add_argument("id", choices=(list(EXPERIMENTS)
                                      + list(EXTRA_EXPERIMENTS)
                                      + ["all"]))
    p_exp.add_argument("--out", help="directory to persist outputs to")
    p_exp.set_defaults(func=_cmd_experiment)

    p_pred = sub.add_parser("predict",
                            help="price one iteration at paper scale")
    p_pred.add_argument("--level", type=int, required=True,
                        choices=(1, 2, 3))
    p_pred.add_argument("-n", type=int, required=True)
    p_pred.add_argument("-k", type=int, required=True)
    p_pred.add_argument("-d", type=int, required=True)
    p_pred.add_argument("--nodes", type=int, default=128)
    p_pred.set_defaults(func=_cmd_predict)

    p_cl = sub.add_parser("cluster",
                          help="run the execute backend on synthetic data")
    p_cl.add_argument("--input",
                      help="cluster this .npy/.csv matrix instead of "
                           "synthetic data")
    p_cl.add_argument("--n", type=int, default=5000)
    p_cl.add_argument("--k", type=int, default=16)
    p_cl.add_argument("--d", type=int, default=32)
    p_cl.add_argument("--nodes", type=int, default=1)
    p_cl.add_argument("--level", type=int, choices=(0, 1, 2, 3))
    p_cl.add_argument("--seed", type=int, default=0)
    p_cl.add_argument("--max-iter", type=int, default=100)
    p_cl.add_argument("--toy", action="store_true",
                      help="use a toy machine instead of SW26010 nodes")
    p_cl.add_argument("--kernel", choices=("naive", "gemm", "pruned"),
                      default=None,
                      help="compute backend for the assign step "
                           "(default: REPRO_KERNEL env var, else naive)")
    p_cl.add_argument("--engine", choices=("serial", "thread", "process"),
                      default=None,
                      help="host execution engine for the numerics "
                           "(default: REPRO_ENGINE env var, else serial)")
    p_cl.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker count for --engine thread/process "
                           "(default: REPRO_WORKERS env var, else CPU count)")
    p_cl.add_argument("--reduce", choices=("serial", "tree"), default=None,
                      help="partial-merge reduction topology "
                           "(default: REPRO_REDUCE env var, else serial)")
    p_cl.add_argument("--integrity", choices=("off", "verify", "repair"),
                      default=None,
                      help="silent-corruption detection/repair for "
                           "partials, shared arrays, and checkpoints "
                           "(default: REPRO_INTEGRITY env var, else off)")
    p_cl.add_argument("--no-model-costs", action="store_true",
                      help="run pure numerics (no time ledger, no "
                           "modelled seconds)")
    p_cl.add_argument("--faults",
                      help="fault plan: 'kind[@iter][:key=val,...];...' "
                           "(e.g. 'cg_failure@3:cg=1;transient_dma:p=0.01') "
                           "or '@plan.json'")
    p_cl.add_argument("--recovery", default="fail_fast",
                      choices=("retry", "replan", "fail_fast"),
                      help="policy applied when an injected fault fires")
    p_cl.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="N",
                      help="snapshot centroids every N iterations "
                           "(modelled I/O charged to 'checkpoint')")
    p_cl.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                      help="persist snapshots durably to DIR/checkpoint.npz "
                           "(atomic write; default: REPRO_CHECKPOINT_DIR "
                           "env var)")
    p_cl.add_argument("--resume", action="store_true",
                      help="restart from the snapshot in --checkpoint-dir; "
                           "the continuation is bit-identical to the "
                           "uninterrupted run")
    p_cl.add_argument("--deadline", type=float, default=None, metavar="S",
                      help="real wall-clock budget in seconds; the run "
                           "aborts with exit code 3 at the first iteration "
                           "boundary past it (default: REPRO_DEADLINE "
                           "env var)")
    p_cl.add_argument("--empty-action", default="keep",
                      choices=("keep", "reseed_farthest"),
                      help="empty-cluster rule for the Update step")
    p_cl.add_argument("--save", help="path to save the result (.npz)")
    p_cl.set_defaults(func=_cmd_cluster)

    p_m = sub.add_parser("machine",
                         help="render the simulated machine (Figure 1)")
    p_m.add_argument("--nodes", type=int, default=1)
    p_m.set_defaults(func=_cmd_machine)

    p_cal = sub.add_parser("calibrate",
                           help="fit model constants to a toy machine")
    p_cal.add_argument("--nodes", type=int, default=2)
    p_cal.set_defaults(func=_cmd_calibrate)

    p_sc = sub.add_parser("scorecard",
                          help="run every experiment, print the verdicts")
    p_sc.add_argument("--skip-extras", action="store_true")
    p_sc.set_defaults(func=_cmd_scorecard)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except DeadlineExceededError as e:
        # Distinct exit code so schedulers can tell "ran out of wall
        # clock" (retryable with a bigger budget / --resume) from a
        # configuration error.
        print(f"deadline exceeded: {e}", file=sys.stderr)
        return 3
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
