"""Figure 3 — Level 1 (dataflow partition) on the three UCI datasets.

One SW26010 processor (4 CGs, 256 CPEs); one-iteration completion time as k
grows.  Paper claim: "As the number of k increases, the completion time on
this approach grows linearly."
"""

from __future__ import annotations

from typing import Dict

from ..data.datasets import TABLE_II
from ..perfmodel.sweep import Series, sweep
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput, monotone_nondecreasing

#: (dataset key, k sweep) as plotted in the paper's three panels.
PANELS = {
    "census": [4, 8, 16, 32, 64],
    "road": [64, 128, 256, 512, 1024],
    "kegg": [16, 32, 64, 128, 256],
}

NODES = 1


def run() -> ExperimentOutput:
    """Regenerate the three panels of Figure 3."""
    series: Dict[str, Series] = {}
    checks: Dict[str, bool] = {}
    sections = []
    for key, ks in PANELS.items():
        ds = TABLE_II[key]
        panel = sweep("k", ks, levels=[1], n=ds.n, k=0, d=ds.d, nodes=NODES)
        s = panel[1]
        s.label = ds.name
        series[ds.name] = s
        finite = s.finite()
        checks[f"{key}: Level 1 feasible over the whole k range"] = (
            len(finite) == len(ks)
        )
        checks[f"{key}: completion time grows with k"] = (
            monotone_nondecreasing(s.y) and s.y[-1] > s.y[0]
        )
        # Linear growth: doubling k less than ~quadruples the time once the
        # k-dependent term dominates (i.e. sub-quadratic, super-constant).
        checks[f"{key}: growth is roughly linear in k"] = (
            s.y[-1] / s.y[0] < (ks[-1] / ks[0]) ** 1.5
        )
        sections.append(series_table(
            {ds.name: s}, x_name="k",
            title=f"Figure 3 panel: {ds.name} (n={ds.n:,}, d={ds.d})",
        ))
    text = "\n\n".join(sections) + "\n\n" + series_sparklines(series)
    return ExperimentOutput(
        exp_id="figure3",
        title="Level 1 - dataflow partition (one SW26010)",
        text=text,
        series=series,
        checks=checks,
    )
