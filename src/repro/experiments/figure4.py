"""Figure 4 — Level 2 (dataflow + centroid partition) on the UCI datasets.

Up to 256 SW26010 processors (1,024 CGs, 65,536 CPEs); one-iteration
completion time over large k ranges (up to 100,000 for Road Network).
Paper claim: time still grows linearly in k, demonstrating that the
nk-partition handles large-scale target centroids (< 100,000).
"""

from __future__ import annotations

from typing import Dict

from ..data.datasets import TABLE_II
from ..perfmodel.sweep import Series, sweep
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput, monotone_nondecreasing

#: (dataset key, k sweep) as plotted in the paper's three panels.
PANELS = {
    "census": [256, 512, 1024, 2048, 4096],
    "road": [6250, 12500, 25000, 50000, 100000],
    "kegg": [512, 1024, 2048, 4096, 8192],
}

NODES = 256


def run() -> ExperimentOutput:
    """Regenerate the three panels of Figure 4."""
    series: Dict[str, Series] = {}
    checks: Dict[str, bool] = {}
    sections = []
    for key, ks in PANELS.items():
        ds = TABLE_II[key]
        panel = sweep("k", ks, levels=[2], n=ds.n, k=0, d=ds.d, nodes=NODES)
        s = panel[2]
        s.label = ds.name
        series[ds.name] = s
        checks[f"{key}: Level 2 feasible over the whole k range"] = (
            len(s.finite()) == len(ks)
        )
        checks[f"{key}: completion time grows with k"] = (
            monotone_nondecreasing(s.y, slack=0.02) and s.y[-1] > s.y[0]
        )
        sections.append(series_table(
            {ds.name: s}, x_name="k",
            title=f"Figure 4 panel: {ds.name} (n={ds.n:,}, d={ds.d})",
        ))
    text = "\n\n".join(sections) + "\n\n" + series_sparklines(series)
    return ExperimentOutput(
        exp_id="figure4",
        title="Level 2 - dataflow and centroids partition (256 processors)",
        text=text,
        series=series,
        checks=checks,
    )
