"""Extension experiment: the auto-selector's level map over (k, d).

Section III.D claims the multi-level design "gives us the needed
flexibility to handle both high dimensional and low dimensional dataset
efficiently" — unlike Bender et al., which is "only efficient for dataset
with larger than 100,000 dimensions".  This experiment renders that claim
as a level map on the paper's machine: which level the auto-selector picks
across a (k, d) grid, with the escalation structure checked (levels only
escalate as k or d grow, never de-escalate), plus the model's confirmation
that the chosen level is also the *cheapest* feasible one at scale.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.kmeans import select_level
from ..core.partition import plan_level3
from ..errors import PartitionError
from ..machine.machine import Machine
from ..machine.specs import sunway_spec
from ..perfmodel.model import PerformanceModel
from ..reporting.tables import format_table
from .base import ExperimentOutput

KS = [16, 256, 4_096, 65_536]
DS = [16, 256, 4_096, 65_536]
N = 1_000_000
NODES = 128


def run() -> ExperimentOutput:
    """Level map + cheapest-level agreement on the 128-node machine."""
    machine = Machine(sunway_spec(NODES), materialize_ldm=False)
    model = PerformanceModel(sunway_spec(NODES))

    grid: Dict[tuple, int] = {}
    rows: List[List[str]] = []
    agree = 0
    comparable = 0
    for k in KS:
        cells = [f"k={k:,}"]
        for d in DS:
            try:
                level = select_level(machine, N, k, d, dtype=np.float32)
            except PartitionError:
                # Resident semantics exhausted: Level 3 streaming is the
                # last resort (DESIGN.md §5a), marked distinctly.
                try:
                    plan_level3(machine, N, k, d, streaming=True,
                                dtype=np.float32)
                    grid[(k, d)] = 3
                    cells.append("L3s")
                except PartitionError:
                    cells.append("-")
                continue
            grid[(k, d)] = level
            cells.append(f"L{level}")
            # Does the model agree the selected level is the cheapest
            # feasible one?  (Model uses streaming semantics, so compare
            # only where the selector's level is model-feasible.)
            preds = {lv: model.predict(lv, N, k, d) for lv in (1, 2, 3)}
            feasible = {lv: p for lv, p in preds.items() if p.feasible}
            if level in feasible:
                comparable += 1
                cheapest = min(feasible, key=lambda lv: feasible[lv].total)
                if cheapest == level or (
                    feasible[level].total
                    <= 1.5 * feasible[cheapest].total
                ):
                    agree += 1
        rows.append(cells)

    checks: Dict[str, bool] = {
        "every grid point is feasible at some level":
            len(grid) == len(KS) * len(DS),
        "levels never de-escalate as k grows (fixed d)":
            all(
                grid[(ka, d)] <= grid[(kb, d)]
                for d in DS
                for ka, kb in zip(KS, KS[1:])
                if (ka, d) in grid and (kb, d) in grid
            ),
        "levels never de-escalate as d grows (fixed k)":
            all(
                grid[(k, da)] <= grid[(k, db)]
                for k in KS
                for da, db in zip(DS, DS[1:])
                if (k, da) in grid and (k, db) in grid
            ),
        "all three levels appear on the map (true flexibility)":
            set(grid.values()) == {1, 2, 3},
        "selector's level is (near-)cheapest under the model on >=65% "
        "of comparable points":
            comparable > 0 and agree / comparable >= 0.65,
    }
    text = format_table(
        [""] + [f"d={d:,}" for d in DS], rows,
        title=(f"Extension: auto-selected level per (k, d) "
               f"(n={N:,}, {NODES} nodes, float32)"),
    )
    text += (f"\n\nmodel agreement: selected level (near-)cheapest on "
             f"{agree}/{comparable} comparable points")
    return ExperimentOutput(
        exp_id="extra_flexibility",
        title="Multi-level flexibility map (extension)",
        text=text,
        checks=checks,
    )
