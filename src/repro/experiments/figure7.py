"""Figure 7 — Level 2 vs Level 3, varying d (k=2000, 128 nodes, ILSVRC n).

Paper claims for this figure:

* Level 2 outperforms Level 3 when d is relatively small,
* Level 3 scales significantly better, winning for all d past a crossover
  (2,560 in the paper's run; our calibration crosses earlier — see
  EXPERIMENTS.md),
* Level 2 cannot run with d greater than 4,096 due to memory constraints,
* Level 2's curve is non-monotonic ("falls twice unexpectedly") because of
  communication/buffering boundary effects.
"""

from __future__ import annotations

import math
from typing import Dict

from ..data.datasets import TABLE_II
from ..perfmodel.sweep import sweep
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput

DS = [512, 1024, 1536, 2048, 2560, 3072, 3584, 4096,
      4608, 5120, 5632, 6144, 6656, 7168, 7680, 8192]
K = 2000
NODES = 128
#: The paper's maximum runnable d for Level 2 in this scenario.
L2_MAX_D = 4096


def run() -> ExperimentOutput:
    """Regenerate Figure 7."""
    n = TABLE_II["ilsvrc2012"].n
    swept = sweep("d", DS, levels=[2, 3], n=n, k=K, d=0, nodes=NODES)
    l2, l3 = swept[2], swept[3]

    crossover = l3.crossover_with(l2)
    l2_feasible_ds = [x for x, y in zip(l2.x, l2.y) if math.isfinite(y)]
    l2_infeasible_ds = [x for x, y in zip(l2.x, l2.y) if not math.isfinite(y)]

    checks: Dict[str, bool] = {
        "Level 2 outperforms Level 3 at the smallest d":
            l2.y[0] < l3.y[0],
        "a crossover exists where Level 3 takes over":
            crossover is not None,
        "Level 3 wins for every d at and past the crossover":
            crossover is not None and all(
                y3 < y2 for x, y2, y3 in zip(l2.x, l2.y, l3.y)
                if x >= crossover and math.isfinite(y2)
            ),
        f"Level 2 runs up to d={L2_MAX_D} and no further":
            max(l2_feasible_ds, default=0) == L2_MAX_D
            and min(l2_infeasible_ds, default=math.inf) == L2_MAX_D + 512,
        "Level 3 feasible across the entire d range":
            len(l3.finite()) == len(DS),
        "Level 2 slope is non-uniform (boundary effects present)":
            _slope_irregular(l2.x, l2.y),
    }

    series = {"Level 2": l2, "Level 3": l3}
    text = series_table(
        series, x_name="d",
        title=(f"Figure 7: varying d with {K} centroids, n={n:,}, "
               f"{NODES} nodes"),
    )
    text += "\n\n" + series_sparklines(series)
    text += (f"\n\ncrossover: Level 3 first wins at d={crossover:g} "
             f"(paper: 2,560)") if crossover else "\n\nno crossover found"
    return ExperimentOutput(
        exp_id="figure7",
        title="Comparison: Level 2 vs Level 3, varying d",
        text=text,
        series=series,
        checks=checks,
    )


def _slope_irregular(xs, ys) -> bool:
    """True if successive per-step slopes differ by more than 25%.

    The paper's Level-2 curve shows discontinuities where communication
    boundaries are crossed; our model's analogue is staging-buffer
    granularity (samples-per-stage is an integer), which also produces
    uneven slopes.
    """
    slopes = []
    for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
        if math.isfinite(y0) and math.isfinite(y1) and x1 > x0:
            slopes.append((y1 - y0) / (x1 - x0))
    if len(slopes) < 2:
        return False
    lo, hi = min(slopes), max(slopes)
    return hi > lo * 1.25 if lo > 0 else True
