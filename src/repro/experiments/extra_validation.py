"""Extension experiment: execute-backend vs model-backend consistency.

The two backends price the same phase structure independently (the executor
charges fine-grained phases while it computes; the model prices them
analytically with the streaming refinement).  This experiment runs both on
identical toy-machine workloads and checks they agree on *ordering* and
rough magnitude — the internal-validity check for every model-backed figure
in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.init import init_centroids
from ..core.level1 import run_level1
from ..core.level2 import run_level2
from ..core.level3 import run_level3
from ..data.synthetic import gaussian_blobs
from ..machine.machine import toy_machine
from ..perfmodel.model import PerformanceModel
from ..perfmodel.params import ModelParams
from ..reporting.tables import format_seconds, format_table
from .base import ExperimentOutput

RUNNERS = {1: run_level1, 2: run_level2, 3: run_level3}

#: Workloads sized so every level is feasible on the toy machine.
WORKLOADS = [
    dict(n=1000, k=8, d=16),
    dict(n=2000, k=16, d=32),
    dict(n=4000, k=24, d=64),
]


def run() -> ExperimentOutput:
    """Compare modelled vs executed per-iteration time on a toy machine."""
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=64 * 1024)
    # The model must price the same machine and dtype the executor uses.
    model = PerformanceModel(machine.spec,
                             ModelParams(dtype=np.dtype(np.float64),
                                         iteration_overhead=0.0,
                                         mpi_message_overhead=1.0e-6))

    rows: List[List[str]] = []
    ratios: List[float] = []
    ratios_by_level: Dict[int, List[float]] = {1: [], 2: [], 3: []}
    for shape in WORKLOADS:
        X, _ = gaussian_blobs(**shape, seed=7)
        C0 = init_centroids(X, shape["k"], method="first")
        for level, runner in RUNNERS.items():
            result = runner(X, C0, machine, max_iter=3)
            exec_time = result.mean_iteration_seconds()
            model_time = model.predict(level, **shape).total
            ratio = model_time / exec_time
            ratios.append(ratio)
            ratios_by_level[level].append(ratio)
            rows.append([
                f"n={shape['n']} k={shape['k']} d={shape['d']}",
                f"L{level}",
                format_seconds(exec_time),
                format_seconds(model_time),
                f"{ratio:.2f}x",
            ])

    checks: Dict[str, bool] = {
        "model within 30x of the executor on every point":
            all(1 / 30 < r < 30 for r in ratios),
        "median model/exec ratio within one order of magnitude":
            0.1 < float(np.median(ratios)) < 10.0,
        # The two backends may disagree on constants (different fixed-cost
        # floors) but must scale alike: per level, the ratio varies by
        # less than 10x across workloads.
        "per-level ratio is stable across workload sizes":
            all(max(rs) / min(rs) < 10.0
                for rs in ratios_by_level.values()),
    }
    text = format_table(
        ["workload", "level", "executed (ledger)", "modelled", "ratio"],
        rows,
        title="Extension: execute-backend vs model-backend consistency "
              "(toy machine)",
    )
    text += (f"\n\nmedian model/exec ratio: {np.median(ratios):.2f}x over "
             f"{len(ratios)} points")
    return ExperimentOutput(
        exp_id="extra_validation",
        title="Model-vs-execute consistency (extension)",
        text=text,
        checks=checks,
    )
