"""Table I — capability envelope of parallel k-means implementations.

The paper's Table I records the largest (n, k, d) each published system
handles.  The prior-work rows are literature citations (fixtures); our row
is *demonstrated*, not asserted: the experiment checks with the partition
planner / performance model that n=10^6, k=160,000, d=196,608 is actually
feasible at Level 3 on the 4,096-node machine, and that no lower level (nor
Bender's two-level window) can hold it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.constraints import (
    bender_window,
    level1_feasibility,
    level3_feasibility,
    min_mprime_group_level3,
)
from ..machine.specs import sunway_spec
from ..perfmodel.model import PerformanceModel
from ..reporting.tables import format_table
from .base import ExperimentOutput


@dataclass(frozen=True)
class CapabilityRow:
    approach: str
    hardware: str
    programming_model: str
    n: float
    k: int
    d: int


#: Prior-work rows of Table I, verbatim from the paper.
PRIOR_WORK: List[CapabilityRow] = [
    CapabilityRow("Bohm, et al [4]", "Multi-core Processors", "MIMD/SIMD",
                  1e7, 40, 20),
    CapabilityRow("Hadian and Shahrivari [17]", "Multi-core Processors",
                  "multi-thread", 1e9, 100, 68),
    CapabilityRow("Zechner and Granitzer [37]", "GPU", "CUDA", 1e6, 128, 200),
    CapabilityRow("Li, et al [26]", "GPU", "CUDA", 1e7, 512, 160),
    CapabilityRow("Haut, et al [19]", "Cloud", "OpenStack", 1e8, 8, 58),
    CapabilityRow("Cui, et al [8]", "Cluster", "Hadoop", 1e5, 100, 9),
    CapabilityRow("Kumar, et al [24]", "Jaguar, Oak Ridge", "MPI",
                  1e10, 1000, 30),
    CapabilityRow("Cai, et al [6]", "Gordon, SDSC", "mclapply (parallel R)",
                  1e6, 8, 8),
    CapabilityRow("Bender, et al [2]", "Trinity, NNSA", "OpenMP",
                  370, 18, 140_256),
]

#: Our row of Table I.
OUR_ROW = CapabilityRow("Our approach", "Sunway, Wuxi", "DMA/MPI",
                        1e6, 160_000, 196_608)


def run() -> ExperimentOutput:
    """Regenerate Table I and verify our row's feasibility claims.

    Table I's row records the *envelope* of maxima the paper achieves —
    k=160,000 is reached at d=3,072 (Figure 6, centroids panel) and
    d=196,608 at k=2,000 (Figures 5/6) — never both simultaneously, which
    would exceed even the full machine's aggregate LDM under C1''.  We
    verify each achieved extreme with the paper's Level-3 constraints
    (float32, as the experiments store image features).
    """
    spec = sunway_spec(4096)
    n = int(OUR_ROW.n)
    dtype = np.float32

    # Extreme 1: k = 160,000 at d = 3,072 (Figure 6 centroids panel).
    k_ext = level3_feasibility(OUR_ROW.k, 3072,
                               mprime_group=spec.n_cgs, spec=spec,
                               dtype=dtype)
    mprime_k = min_mprime_group_level3(OUR_ROW.k, 3072, spec, dtype=dtype)
    # Extreme 2: d = 196,608 at k = 2,000 (Figures 5/6, the headline).
    d_ext = level3_feasibility(2000, OUR_ROW.d,
                               mprime_group=spec.n_cgs, spec=spec,
                               dtype=dtype)
    mprime_d = min_mprime_group_level3(2000, OUR_ROW.d, spec, dtype=dtype)
    model = PerformanceModel(spec)
    pred = model.predict(3, n, 2000, OUR_ROW.d)
    # Neither extreme fits a single CPE (Level 1) nor Bender's two-level
    # window: Z = 32 KB cache, M = 16 GB scratchpad, float32 elements.
    l1_k = level1_feasibility(OUR_ROW.k, 3072, spec, dtype=dtype)
    l1_d = level1_feasibility(2000, OUR_ROW.d, spec, dtype=dtype)
    bender_fits = bender_window(OUR_ROW.k, OUR_ROW.d,
                                cache_elements=32 * 1024 // 4,
                                scratchpad_elements=16 * 2 ** 30 // 4)

    checks = {
        "k extreme (k=160000 at d=3072) feasible at Level 3 (C1''-C3'')":
            k_ext.feasible and mprime_k is not None,
        "d extreme (d=196608 at k=2000) feasible at Level 3 (C1''-C3'')":
            d_ext.feasible and mprime_d is not None,
        "performance model prices the d extreme finitely":
            pred.feasible,
        "neither extreme fits Level 1 (single-CPE C1)":
            not l1_k.feasible and not l1_d.feasible,
        "headline k*d falls outside Bender's Z < kd < M window":
            not bender_fits,
    }

    headers = ["Approach", "Hardware", "Model", "n", "k", "d"]
    rows = [
        [r.approach, r.hardware, r.programming_model,
         f"{r.n:.0e}", f"{r.k:,}", f"{r.d:,}"]
        for r in PRIOR_WORK + [OUR_ROW]
    ]
    text = format_table(
        headers, rows,
        title="Table I: parallel k-means implementations",
    )
    text += (
        f"\n\nOur row verified per achieved extreme: k=160,000 at d=3,072 "
        f"(m'group={mprime_k}), d=196,608 at k=2,000 (m'group={mprime_d}, "
        f"modelled {pred.total:.3f} s/iteration on 4096 nodes)."
    )
    return ExperimentOutput(
        exp_id="table1",
        title="Parallel k-means implementations (capability envelope)",
        text=text,
        rows=rows,
        checks=checks,
    )
