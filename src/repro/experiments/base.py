"""Common experiment output type and helpers.

Every table/figure of the paper maps to one experiment module exposing a
``run()`` function.  An experiment returns structured series/rows, a
rendered text report, and a dict of *shape checks* — the qualitative claims
of that figure ("Level 3 outperforms Level 2 for all d > crossover", "time
grows monotonically with k", ...) evaluated against our reproduction.  The
shape checks are what the test suite and EXPERIMENTS.md assert on, per the
reproduction contract: match shapes, not testbed-absolute numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..perfmodel.sweep import Series


@dataclass
class ExperimentOutput:
    """The result of regenerating one table or figure."""

    exp_id: str
    title: str
    #: Rendered, printable report (what the bench harness prints).
    text: str
    #: Numeric series per label (figures) — None for pure tables.
    series: Optional[Dict[str, Series]] = None
    #: Structured rows (tables) — None for pure figures.
    rows: Optional[List[Sequence[object]]] = None
    #: Qualitative claims of the paper evaluated on our data.
    checks: Dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def summary_line(self) -> str:
        n_ok = sum(self.checks.values())
        return (f"[{self.exp_id}] {self.title}: "
                f"{n_ok}/{len(self.checks)} shape checks pass")


def monotone_nondecreasing(values: Sequence[float],
                           slack: float = 0.0) -> bool:
    """True if the finite subsequence never drops by more than ``slack``
    (relative).  Used for "grows with k/d" claims, tolerating the boundary
    artifacts the paper itself reports in Figure 7."""
    finite = [v for v in values if math.isfinite(v)]
    for prev, cur in zip(finite, finite[1:]):
        if cur < prev * (1.0 - slack):
            return False
    return True


def monotone_nonincreasing(values: Sequence[float],
                           slack: float = 0.0) -> bool:
    """True if finite values never rise by more than ``slack`` (relative)."""
    finite = [v for v in values if math.isfinite(v)]
    for prev, cur in zip(finite, finite[1:]):
        if cur > prev * (1.0 + slack):
            return False
    return True


def speedup_at(series_a: Series, series_b: Series, x: float) -> float:
    """a/b time ratio at a given x (inf if either infeasible there)."""
    i = series_a.x.index(x)
    a, b = series_a.y[i], series_b.y[i]
    if not (math.isfinite(a) and math.isfinite(b)) or b == 0:
        return math.inf
    return a / b
