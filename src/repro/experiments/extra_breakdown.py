"""Extension experiment: phase breakdown of Levels 2 and 3 (not a figure).

Renders the paper's section-III cost analysis from the model's actual
phase charges: at the Figure-7 anchor (k=2,000, d=4,096, 128 nodes),
Level 2 must be dominated by DMA re-streaming of non-resident centroid
slices, while Level 3 splits between per-sample MINLOC messaging and
compute — the *mechanism* behind the crossover, made visible.
"""

from __future__ import annotations

from typing import Dict

from ..data.datasets import TABLE_II
from ..machine.specs import sunway_spec
from ..perfmodel.model import PerformanceModel
from ..reporting.tables import format_seconds, format_table
from .base import ExperimentOutput

K = 2000
D = 4096
NODES = 128


def run() -> ExperimentOutput:
    """Phase breakdown for both levels at the Figure-7 anchor point."""
    n = TABLE_II["ilsvrc2012"].n
    model = PerformanceModel(sunway_spec(NODES))
    l2 = model.predict(2, n, K, D)
    l3 = model.predict(3, n, K, D)

    rows = []
    for pred in (l2, l3):
        for phase, seconds in pred.phases.items():
            rows.append([f"L{pred.level}", phase, format_seconds(seconds),
                         f"{seconds / pred.total * 100:5.1f}%"])

    checks: Dict[str, bool] = {
        "Level 2 is DMA-dominated (re-streaming) at the anchor":
            l2.dma > 0.5 * l2.total,
        "Level 2's centroid working set is mostly non-resident":
            l2.resident_fraction < 0.2,
        "Level 3 keeps its centroid slices fully resident":
            l3.resident_fraction == 1.0,
        "Level 3's DMA share is small (dimension partition pays off)":
            l3.dma < 0.3 * l3.total,
        "network (per-sample MINLOC) is a visible Level-3 cost":
            l3.network > 0.2 * l3.total,
    }
    text = format_table(
        ["level", "phase", "time", "share"], rows,
        title=(f"Extension: phase breakdown at k={K}, d={D}, "
               f"{NODES} nodes (n={n:,})"),
    )
    text += (f"\n\ntotals: L2 {format_seconds(l2.total)} "
             f"(resident {l2.resident_fraction:.2f}), "
             f"L3 {format_seconds(l3.total)} "
             f"(resident {l3.resident_fraction:.2f})")
    return ExperimentOutput(
        exp_id="extra_breakdown",
        title="Phase breakdown of the Level 2/3 crossover (extension)",
        text=text,
        checks=checks,
    )
