"""Figure 8 — Level 2 vs Level 3, varying k (d=4096, 128 nodes, ILSVRC n).

Paper claims: with d fixed at 4,096, "the Level 3 approach actually always
outperforms Level 2, with the gap increasing as k increases."
"""

from __future__ import annotations

import math
from typing import Dict

from ..data.datasets import TABLE_II
from ..perfmodel.sweep import sweep
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput, speedup_at

KS = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072]
D = 4096
NODES = 128


def run() -> ExperimentOutput:
    """Regenerate Figure 8."""
    n = TABLE_II["ilsvrc2012"].n
    swept = sweep("k", KS, levels=[2, 3], n=n, k=0, d=D, nodes=NODES)
    l2, l3 = swept[2], swept[3]

    gaps = [y2 / y3 for y2, y3 in zip(l2.y, l3.y)
            if math.isfinite(y2) and math.isfinite(y3)]
    gap_at_2048 = speedup_at(l2, l3, 2048.0)
    gap_at_max = speedup_at(l2, l3, float(KS[-1]))
    checks: Dict[str, bool] = {
        "both levels feasible over the whole k range":
            len(l2.finite()) == len(KS) and len(l3.finite()) == len(KS),
        "Level 3 always outperforms Level 2 at d=4096":
            all(y3 < y2 for y2, y3 in zip(l2.y, l3.y)),
        # The paper's inset anchors the small-k regime at k=2048; the gap
        # from there to the largest k must not shrink.
        "the gap at k=131072 is at least the gap at k=2048":
            gap_at_max >= gap_at_2048,
        "Level 3 is at least 5x faster at the largest k":
            gap_at_max > 5.0,
        "Level 2 degrades to >100 s/iter while Level 3 stays <40 s":
            l2.y[-1] > 100.0 and l3.y[-1] < 40.0,
    }

    series = {"Level 2": l2, "Level 3": l3}
    text = series_table(
        series, x_name="k",
        title=(f"Figure 8: varying k with {D} dimensions, n={n:,}, "
               f"{NODES} nodes"),
    )
    text += "\n\n" + series_sparklines(series)
    text += (f"\n\nL2/L3 gap: {gaps[0]:.1f}x at k={KS[0]} -> "
             f"{gaps[-1]:.1f}x at k={KS[-1]:,}")
    return ExperimentOutput(
        exp_id="figure8",
        title="Comparison: Level 2 vs Level 3, varying k",
        text=text,
        series=series,
        checks=checks,
    )
