"""Table II — the benchmark datasets, with stand-in generation verified."""

from __future__ import annotations

from ..data.datasets import TABLE_II
from ..reporting.tables import format_table
from .base import ExperimentOutput


def run() -> ExperimentOutput:
    """Regenerate Table II and verify the generators produce right shapes."""
    rows = []
    checks = {}
    for key, ds in TABLE_II.items():
        rows.append([ds.name, f"{ds.n:,}", f"{ds.paper_k:,}", f"{ds.d:,}",
                     ds.source])
        # Generate a scaled sample and check the shape contract.
        sample = ds.load(scale=1.0, seed=0, max_n=64, max_d=256)
        checks[f"{key}: stand-in generator yields 2-D float data"] = (
            sample.ndim == 2 and sample.shape[0] <= 64
            and sample.shape[1] <= min(ds.d, 256)
        )
    text = format_table(
        ["Data Set", "n", "k", "d", "Source"], rows,
        title="Table II: benchmarks from UCI and ImgNet",
    )
    return ExperimentOutput(
        exp_id="table2",
        title="Benchmark datasets",
        text=text,
        rows=rows,
        checks=checks,
    )
