"""Figure 2 — the three-level k-means data-partition design.

The paper's Figure 2 is the abstract diagram of how n, k and d map onto
the hardware hierarchy.  We render it from a *real* Level-3 plan for the
headline-class workload, and check the structural invariants the diagram
asserts: sample blocks tile the dataflow across CG groups, centroid slices
tile k across each group's member CGs, dimension slices tile d across each
CG's CPEs, and groups are placed inside supernodes when they fit.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.partition import plan_level3
from ..machine.machine import Machine
from ..machine.render import render_level3_partition
from ..machine.specs import sunway_spec
from .base import ExperimentOutput

N, K, D = 1_265_723, 2000, 12_288
NODES = 128


def run() -> ExperimentOutput:
    """Render the nkd partition of a real plan and verify its structure."""
    machine = Machine(sunway_spec(NODES), materialize_ldm=False)
    plan = plan_level3(machine, N, K, D, dtype=np.float32)

    def tiles(slices, total):
        return (slices[0][0] == 0 and slices[-1][1] == total
                and all(a[1] == b[0] for a, b in zip(slices, slices[1:])))

    member_counts = {len(g) for g in plan.cg_groups}
    all_cgs = [cg for g in plan.cg_groups for cg in g]
    checks: Dict[str, bool] = {
        "sample blocks tile the dataflow across CG groups":
            tiles(plan.sample_blocks, N),
        "centroid slices tile k across each group's member CGs":
            tiles(plan.centroid_slices, K),
        "dimension slices tile d across the 64 CPEs of a CG":
            tiles(plan.dim_slices, D)
            and len(plan.dim_slices) == machine.cpes_per_cg,
        "every CG group has exactly m'group members":
            member_counts == {plan.mprime_group},
        "no CG serves two groups":
            len(all_cgs) == len(set(all_cgs)),
        "groups stay inside one supernode when they fit":
            plan.mprime_group > machine.cgs_per_node * 256
            or not any(machine.group_spans_supernodes(g)
                       for g in plan.cg_groups),
    }
    text = render_level3_partition(plan, machine)
    return ExperimentOutput(
        exp_id="figure2",
        title="Three-level k-means design for data partition and parallelism",
        text=text,
        checks=checks,
    )
