"""Extension experiment: Level 3 + Hamerly bounds (the paper's future work).

Runs the bounded nkd executor against the plain one on a clustered toy
workload and reports, per iteration, the candidate fraction and the
modelled time saved — demonstrating that the hierarchy composes with
bound-based Lloyd optimisations, which the paper leaves as future work
("shows how to optimize this and potentially similar algorithms").
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.init import init_centroids
from ..core.level3 import Level3Executor
from ..core.level3_bounded import Level3BoundedExecutor
from ..core.lloyd import lloyd
from ..data.synthetic import gaussian_blobs
from ..machine.machine import toy_machine
from ..reporting.tables import format_seconds, format_table
from .base import ExperimentOutput

N, K, D = 1500, 16, 32
SEED = 77


def run() -> ExperimentOutput:
    """Bounded vs plain Level 3 on identical data, machine, and init."""
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=64 * 1024)
    X, _ = gaussian_blobs(n=N, k=K, d=D, seed=SEED)
    C0 = init_centroids(X, K, method="first")

    reference = lloyd(X, C0, max_iter=60)
    # Pin the kernel on both executors: the experiment measures what the
    # *filtering* saves against a fixed dense baseline.  An env-sourced
    # kernel="pruned" would shrink the plain baseline too and understate
    # (or invert) the savings.
    plain = Level3Executor(machine, kernel="gemm")
    plain_result = plain.run(X, C0, max_iter=60)
    bounded = Level3BoundedExecutor(machine, kernel="gemm")
    bounded_result = bounded.run(X, C0, max_iter=60)

    rows = []
    for i in range(1, bounded_result.n_iter + 1):
        cand = bounded.candidates_per_iteration[i - 1]
        t_plain = plain_result.ledger.iteration_time(i)
        t_bound = bounded_result.ledger.iteration_time(i)
        rows.append([
            i, f"{cand}/{N}", f"{cand / N * 100:5.1f}%",
            format_seconds(t_plain), format_seconds(t_bound),
            f"{(1 - t_bound / t_plain) * 100:5.1f}%",
        ])

    exact = (np.array_equal(bounded_result.assignments,
                            reference.assignments)
             and np.allclose(bounded_result.centroids,
                             reference.centroids, rtol=1e-9))
    last_cand = bounded.candidates_per_iteration[-1]
    checks: Dict[str, bool] = {
        "bounded trajectory equals serial Lloyd exactly": exact,
        "same iteration count as the plain executor":
            bounded_result.n_iter == plain_result.n_iter,
        "candidate set shrinks below 25% once clusters stabilise":
            last_cand < 0.25 * N,
        "bounded run is cheaper overall (modelled)":
            bounded_result.mean_iteration_seconds()
            < plain_result.mean_iteration_seconds(),
        "the final iteration saves at least 20% modelled time":
            bounded_result.ledger.iteration_time(bounded_result.n_iter)
            < 0.8 * plain_result.ledger.iteration_time(plain_result.n_iter),
    }
    text = format_table(
        ["iter", "candidates", "frac", "plain t/iter", "bounded t/iter",
         "saved"],
        rows,
        title=(f"Extension: Level 3 + Hamerly bounds "
               f"(n={N}, k={K}, d={D}, toy machine)"),
    )
    text += (f"\n\nmean s/iter: plain "
             f"{plain_result.mean_iteration_seconds():.2e}, bounded "
             f"{bounded_result.mean_iteration_seconds():.2e}")
    return ExperimentOutput(
        exp_id="extra_bounded",
        title="Level 3 + triangle-inequality bounds (extension)",
        text=text,
        checks=checks,
    )
