"""Figure 9 — Level 2 vs Level 3, varying node count (d=4096, k=2000).

Paper claims: "Level 3 clearly outperforms Level 2 in all scenarios.  ...
The performance gap narrows as more nodes are added, but remains
significant."
"""

from __future__ import annotations

import math
from typing import Dict

from ..data.datasets import TABLE_II
from ..perfmodel.sweep import sweep
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput, monotone_nonincreasing

NODES = [2, 4, 8, 16, 32, 64, 128, 256]
K = 2000
D = 4096


def run() -> ExperimentOutput:
    """Regenerate Figure 9."""
    n = TABLE_II["ilsvrc2012"].n
    swept = sweep("nodes", NODES, levels=[2, 3], n=n, k=K, d=D, nodes=0)
    l2, l3 = swept[2], swept[3]

    gaps = [y2 / y3 for y2, y3 in zip(l2.y, l3.y)
            if math.isfinite(y2) and math.isfinite(y3)]
    checks: Dict[str, bool] = {
        "both levels feasible at every node count":
            len(l2.finite()) == len(NODES) and len(l3.finite()) == len(NODES),
        "Level 3 outperforms Level 2 at every node count":
            all(y3 < y2 for y2, y3 in zip(l2.y, l3.y)),
        "Level 2 time falls as nodes are added":
            monotone_nonincreasing(l2.y, slack=0.02),
        "Level 3 time falls as nodes are added (boundary slack allowed)":
            monotone_nonincreasing(l3.y, slack=0.25),
        "the gap narrows as nodes are added":
            gaps[-1] < gaps[0],
        "the gap remains significant (Level 3 at least 2x faster at 256)":
            gaps[-1] > 2.0,
    }

    series = {"Level 2": l2, "Level 3": l3}
    text = series_table(
        series, x_name="nodes",
        title=(f"Figure 9: varying nodes with d={D}, k={K}, n={n:,}"),
    )
    text += "\n\n" + series_sparklines(series)
    text += (f"\n\nL2/L3 gap: {gaps[0]:.1f}x at {NODES[0]} nodes -> "
             f"{gaps[-1]:.1f}x at {NODES[-1]} nodes")
    return ExperimentOutput(
        exp_id="figure9",
        title="Comparison: Level 2 vs Level 3, varying node count",
        text=text,
        series=series,
        checks=checks,
    )
