"""The reproduction scorecard: one page summarising the whole evaluation.

Runs every experiment (paper + extensions), aggregates the shape-check
verdicts, and pulls out the headline numbers a reader asks about first.
This is the artifact `python -m repro scorecard` and the reproduce_paper
example print at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..data.datasets import TABLE_II
from ..machine.specs import sunway_spec
from ..perfmodel.model import PerformanceModel
from ..reporting.tables import format_table
from .base import ExperimentOutput
from .registry import EXPERIMENTS, EXTRA_EXPERIMENTS


@dataclass
class Scorecard:
    """Aggregated verdicts for the full evaluation."""

    outputs: List[ExperimentOutput]

    @property
    def n_experiments(self) -> int:
        return len(self.outputs)

    @property
    def n_checks(self) -> int:
        return sum(len(o.checks) for o in self.outputs)

    @property
    def n_checks_passed(self) -> int:
        return sum(sum(o.checks.values()) for o in self.outputs)

    @property
    def all_pass(self) -> bool:
        return self.n_checks_passed == self.n_checks

    def failures(self) -> Dict[str, List[str]]:
        return {
            o.exp_id: [n for n, ok in o.checks.items() if not ok]
            for o in self.outputs if not o.all_checks_pass
        }

    def render(self) -> str:
        rows = []
        for o in self.outputs:
            n_ok = sum(o.checks.values())
            kind = "paper" if o.exp_id in EXPERIMENTS else "extension"
            rows.append([o.exp_id, kind, f"{n_ok}/{len(o.checks)}",
                         "pass" if o.all_checks_pass else "FAIL"])
        text = format_table(
            ["experiment", "kind", "checks", "verdict"], rows,
            title="Reproduction scorecard",
        )
        headline = PerformanceModel(sunway_spec(4096)).predict(
            3, TABLE_II["ilsvrc2012"].n, 2000, 196_608)
        text += (
            f"\n\n{self.n_checks_passed}/{self.n_checks} shape checks pass "
            f"across {self.n_experiments} experiments"
            f"\nheadline: {headline.total:.2f} s/iteration at k=2,000, "
            f"d=196,608 on 4,096 nodes (paper: < 18 s)"
        )
        return text


def build_scorecard(include_extras: bool = True) -> Scorecard:
    """Run every registered experiment and aggregate the verdicts."""
    runners = dict(EXPERIMENTS)
    if include_extras:
        runners.update(EXTRA_EXPERIMENTS)
    return Scorecard(outputs=[run() for run in runners.values()])
