"""Table III — execution-time comparison with other architectures.

The comparator times are the published numbers the paper cites; the Sunway
column comes from our performance model at the paper's per-row node counts.
Our model is optimistic relative to the paper's measured times at small
scale (it omits testbed noise and some software overhead), so the *speedup
factors* overshoot; the shape checks assert the paper's qualitative
conclusions instead: Sunway wins every row, the heterogeneous-cluster row
wins by the largest margin class, and the FPGA row is the closest race.
"""

from __future__ import annotations

from typing import Dict

from ..perfmodel.comparators import compare_all
from ..reporting.tables import format_table
from .base import ExperimentOutput


def run() -> ExperimentOutput:
    """Regenerate Table III with modelled Sunway times."""
    results = compare_all()

    rows = []
    for r in results:
        rows.append([
            r.row.approach,
            f"{r.row.n:.1e}", f"{r.row.k:,}", f"{r.row.d:,}",
            f"{r.row.their_seconds:g}",
            f"{r.our_sunway_seconds:.6f} ({r.row.sunway_nodes} nodes, L{r.our_level})",
            f"{r.our_speedup:.0f}x",
            f"{r.row.paper_speedup:.0f}x",
        ])

    speedups = {r.row.approach: r.our_speedup for r in results}
    fpga_row = next(r for r in results if "Li, et al" in r.row.approach)
    checks: Dict[str, bool] = {
        "Sunway wins every row": all(r.sunway_wins for r in results),
        "heterogeneous-cluster row (Rossbach) speedup exceeds 50x":
            speedups["Rossbach, et al [33] (Dandelion)"] > 50.0,
        "FPGA row is the closest race (smallest speedup)":
            fpga_row.our_speedup == min(speedups.values()),
        "every row's speedup is within 30x of the paper's claim":
            all(
                r.our_speedup / r.row.paper_speedup < 30.0
                and r.row.paper_speedup / r.our_speedup < 30.0
                for r in results
            ),
    }

    text = format_table(
        ["Approach", "n", "k", "d", "their s/iter",
         "our Sunway s/iter (modelled)", "our speedup", "paper speedup"],
        rows,
        title="Table III: execution time comparison with other architectures",
    )
    return ExperimentOutput(
        exp_id="table3",
        title="Execution time comparison with other architectures",
        text=text,
        rows=rows,
        checks=checks,
    )
