"""Figure 1 — the general architecture of the SW26010 many-core processor.

The paper's Figure 1 is a block diagram; ours renders from the live spec
objects, so the diagram cannot drift from the simulated hardware.  The
checks pin every number the paper's section II.A states about the chip.
"""

from __future__ import annotations

from typing import Dict

from ..machine.render import render_machine, render_processor
from ..machine.specs import sunway_spec
from .base import ExperimentOutput


def run() -> ExperimentOutput:
    """Render the SW26010 and verify the published parameters."""
    spec = sunway_spec(1)
    proc = spec.processor
    cg = proc.cg

    checks: Dict[str, bool] = {
        "four core groups per processor": proc.n_cgs == 4,
        "65 cores per CG: 1 MPE + 64 CPEs in an 8x8 mesh":
            cg.n_cpes == 64 and cg.mesh_rows == 8 and cg.mesh_cols == 8,
        "64 KB LDM per CPE": cg.cpe.ldm_bytes == 64 * 1024,
        "16 KB L1 instruction cache per CPE":
            cg.cpe.l1_icache_bytes == 16 * 1024,
        "CPEs run at 1.45 GHz": abs(cg.cpe.clock_hz - 1.45e9) < 1e3,
        "register communication at 46.4 GB/s":
            abs(cg.register_bw - 46.4e9) < 1e6,
        "DMA at 32 GB/s": abs(cg.dma_bw - 32e9) < 1e6,
        "32 GB DDR3 shared by the 4 CGs":
            proc.main_memory_bytes == 32 * 2**30,
        "256 CPEs per processor (the Level-1 experimental setup)":
            proc.n_cpes == 256,
    }
    text = render_processor(spec)
    text += "\n\n" + render_machine(spec)
    return ExperimentOutput(
        exp_id="figure1",
        title="General architecture of the SW26010 many-core processor",
        text=text,
        checks=checks,
    )
