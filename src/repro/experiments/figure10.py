"""Figure 10 — remote-sensing land-cover classification application.

The paper classifies DeepGlobe 2018 tiles into 7 land classes with Level-3
k-means (n=5,838,480, k=7, d=4096, 400 processors).  We run the identical
pipeline end-to-end on a synthetic tile at laptop scale — patch features,
hierarchical k-means, majority-vote class mapping, accuracy against dense
ground truth — and price the paper's full-scale configuration with the
performance model.
"""

from __future__ import annotations

from typing import Dict

from ..apps.landcover import classify_land_cover
from ..reporting.tables import format_table
from .base import ExperimentOutput

HEIGHT = WIDTH = 128
PATCH = 4
SEED = 2018


def run() -> ExperimentOutput:
    """Run the land-cover pipeline and verify its quality claims."""
    result = classify_land_cover(
        height=HEIGHT, width=WIDTH, patch=PATCH, n_classes=7,
        seed=SEED, predict_paper_scale=True,
    )
    shares = result.class_shares()
    populated = sum(1 for v in shares.values() if v > 0.01)

    checks: Dict[str, bool] = {
        "clustering recovers the land classes (accuracy > 70%)":
            result.accuracy > 0.70,
        "at least 4 of 7 classes are populated in the class map":
            populated >= 4,
        "k-means ran to completion on the simulated machine":
            result.kmeans.n_iter >= 1,
        "paper-scale config (n=5.8M, k=7, d=4096, 400 nodes) is feasible":
            result.paper_scale is not None and result.paper_scale.feasible,
        "paper-scale one-iteration time is sub-second":
            result.paper_scale is not None
            and result.paper_scale.total < 1.0,
    }

    share_rows = [[name, f"{frac * 100:.1f}%"]
                  for name, frac in shares.items()]
    text = format_table(
        ["land class", "share of tile"], share_rows,
        title=(f"Figure 10: land-cover classification "
               f"({HEIGHT}x{WIDTH} tile, {PATCH}x{PATCH} patches, "
               f"d={PATCH * PATCH * 3})"),
    )
    text += f"\n\npatch accuracy vs ground truth: {result.accuracy * 100:.1f}%"
    if result.paper_scale is not None:
        text += (f"\npaper-scale prediction: "
                 f"{result.paper_scale.total:.4f} s/iteration "
                 f"(n=5,838,480, k=7, d=4096, 400 nodes)")
    text += "\n\npredicted class map (coarse):\n" + result.render_ascii(48)
    return ExperimentOutput(
        exp_id="figure10",
        title="Remote sensing image classification (land cover)",
        text=text,
        checks=checks,
    )
