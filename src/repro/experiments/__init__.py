"""Experiment harness: one module per table/figure of the paper.

Each module's ``run()`` regenerates its table or figure (series/rows + a
printable report) and evaluates the paper's qualitative claims as boolean
shape checks.  ``repro.experiments.run_all()`` reproduces the entire
evaluation section.
"""

from .base import ExperimentOutput
from .registry import EXPERIMENTS, EXTRA_EXPERIMENTS, run_all, run_experiment
from .scorecard import Scorecard, build_scorecard

__all__ = ["EXPERIMENTS", "EXTRA_EXPERIMENTS", "ExperimentOutput",
           "Scorecard", "build_scorecard", "run_all", "run_experiment"]
