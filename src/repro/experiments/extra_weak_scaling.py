"""Extension experiment: weak scaling of Level 3 (not a paper figure).

The paper only shows strong scaling (Figures 6/9).  A natural follow-up a
reviewer would ask for: hold the *per-node* work constant (n grows with the
machine) and watch the iteration time — flat is perfect weak scaling.  We
grow n proportionally to nodes at the headline-class configuration
(k=2,000, d=12,288, ~309 samples/CG like the ILSVRC run on 4,096 nodes).
"""

from __future__ import annotations

from typing import Dict

from ..machine.specs import sunway_spec
from ..perfmodel.model import PerformanceModel
from ..perfmodel.sweep import Series
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput

NODES = [64, 128, 256, 512, 1024]
SAMPLES_PER_NODE = 1200
K = 2000
D = 12_288


def run() -> ExperimentOutput:
    """Weak-scale Level 3: n = SAMPLES_PER_NODE * nodes."""
    series = Series(label="Level 3 (weak scaling)")
    for nodes in NODES:
        model = PerformanceModel(sunway_spec(nodes))
        pred = model.predict(3, SAMPLES_PER_NODE * nodes, K, D)
        series.x.append(float(nodes))
        series.y.append(pred.total)
        series.predictions.append(pred)

    finite = series.finite()
    # Weak-scaling efficiency: t(min nodes) / t(max nodes).
    efficiency = series.y[0] / series.y[-1] if series.y[-1] > 0 else 0.0
    checks: Dict[str, bool] = {
        "feasible at every machine size": len(finite) == len(NODES),
        "iteration time stays within 2x of the smallest machine":
            max(y for _, y in finite) <= 2.0 * min(y for _, y in finite),
        "no monotonic blow-up (last <= 1.5x first)":
            series.y[-1] <= 1.5 * series.y[0],
    }
    bundle = {series.label: series}
    text = series_table(
        bundle, x_name="nodes",
        title=(f"Extension: Level-3 weak scaling "
               f"(n = {SAMPLES_PER_NODE}/node, k={K}, d={D:,})"),
    )
    text += "\n\n" + series_sparklines(bundle)
    text += f"\n\nweak-scaling efficiency (first/last): {efficiency:.2f}"
    return ExperimentOutput(
        exp_id="extra_weak_scaling",
        title="Level-3 weak scaling (extension)",
        text=text,
        series=bundle,
        checks=checks,
    )
