"""Experiment registry: every table and figure, addressable by id."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from . import (
    extra_bounded,
    extra_breakdown,
    extra_dimreduction,
    extra_flexibility,
    extra_validation,
    extra_weak_scaling,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
)
from .base import ExperimentOutput

#: id -> zero-argument runner, in the paper's presentation order.
EXPERIMENTS: Dict[str, Callable[[], ExperimentOutput]] = {
    "table1": table1.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "table2": table2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "table3": table3.run,
    "figure10": figure10.run,
}

#: Extensions beyond the paper's evaluation (weak scaling, phase breakdown,
#: model-vs-execute validation).  Run via ``run_experiment`` like the rest;
#: kept out of EXPERIMENTS so "the paper's figures" stays a precise set.
EXTRA_EXPERIMENTS: Dict[str, Callable[[], ExperimentOutput]] = {
    "extra_weak_scaling": extra_weak_scaling.run,
    "extra_bounded": extra_bounded.run,
    "extra_breakdown": extra_breakdown.run,
    "extra_dimreduction": extra_dimreduction.run,
    "extra_flexibility": extra_flexibility.run,
    "extra_validation": extra_validation.run,
}


def run_experiment(exp_id: str) -> ExperimentOutput:
    """Run one experiment by id (e.g. "figure7" or "extra_breakdown")."""
    runner = EXPERIMENTS.get(exp_id) or EXTRA_EXPERIMENTS.get(exp_id)
    if runner is None:
        known = ", ".join(list(EXPERIMENTS) + list(EXTRA_EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; known: {known}"
        )
    return runner()


def run_all() -> List[ExperimentOutput]:
    """Run every experiment in paper order."""
    return [runner() for runner in EXPERIMENTS.values()]
