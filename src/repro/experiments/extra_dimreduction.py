"""Extension experiment: native high-d clustering vs PCA-then-cluster.

The paper's introduction motivates the whole system with workloads that
have "an intrinsically high dimensional feature space where traditional
dimensionality reduction techniques are commonly used" — i.e., where
reduce-then-cluster is the workaround forced by scale limits, and a lossy
one.  This experiment makes that claim measurable: with k clusters on the
one-hot simplex the structure is intrinsically (k-1)-dimensional, so *no*
projection far below k dimensions can keep the classes apart —
PCA-then-cluster collapses while native full-dimensional k-means — the
thing the paper's Level 3 makes affordable — recovers them.
"""

from __future__ import annotations

from typing import Dict

from ..core.init import init_centroids
from ..core.kmeans import HierarchicalKMeans
from ..core.metrics import adjusted_rand_index
from ..data.preprocess import PCA, simplex_blobs
from ..machine.machine import toy_machine
from ..machine.specs import sunway_spec
from ..perfmodel.model import PerformanceModel
from ..reporting.tables import format_table
from .base import ExperimentOutput

N, K, D = 3000, 48, 256
NOISE = 0.08
SEED = 13


def _cluster_ari(X, truth, machine) -> float:
    model = HierarchicalKMeans(K, machine=machine, init="kmeans++",
                               seed=SEED, max_iter=60)
    result = model.fit(X)
    return adjusted_rand_index(result.assignments, truth)


def run() -> ExperimentOutput:
    """Native-d vs PCA-reduced clustering quality on adversarial data."""
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=64 * 1024)
    X, truth = simplex_blobs(N, K, D, noise=NOISE, seed=SEED)
    d = X.shape[1]

    rows = []
    ari_native = _cluster_ari(X, truth, machine)
    rows.append(["native", f"{d}", f"{ari_native:.3f}"])

    ari_by_components: Dict[int, float] = {}
    for n_comp in (2, 4, 8):
        reduced = PCA(n_components=n_comp).fit_transform(X)
        ari = _cluster_ari(reduced, truth, machine)
        ari_by_components[n_comp] = ari
        rows.append([f"PCA-{n_comp}", f"{n_comp}", f"{ari:.3f}"])

    # What the full-d problem costs at paper scale (the price of not
    # reducing — which Level 3 makes tractable).
    pred = PerformanceModel(sunway_spec(16)).predict(3, N * 1000, K, d)

    checks: Dict[str, bool] = {
        "native full-d clustering recovers the classes (ARI > 0.75)":
            ari_native > 0.75,
        "PCA-2 collapses the simplex structure (ARI < 0.2)":
            ari_by_components[2] < 0.2,
        "PCA-4 stays far below native (ARI < 0.5)":
            ari_by_components[4] < 0.5,
        "native beats every aggressive reduction":
            all(ari_native > v for v in ari_by_components.values()),
        "the native-d problem is affordable at scale (model, 16 nodes)":
            pred.feasible and pred.total < 10.0,
    }
    text = format_table(
        ["pipeline", "dims clustered", "ARI vs ground truth"], rows,
        title=(f"Extension: native high-d clustering vs PCA-then-cluster "
               f"(n={N}, k={K} simplex clusters, d={D})"),
    )
    text += (f"\n\nnative-d cost at scale (model, n={N * 1000:,}, 16 "
             f"nodes): {pred.total:.4f} s/iteration")
    return ExperimentOutput(
        exp_id="extra_dimreduction",
        title="Native high-d clustering vs PCA (extension)",
        text=text,
        checks=checks,
    )
