"""Figure 5 — Level 3 (nkd partition) on ILSVRC2012 features.

4,096 nodes; k in {128..2048} crossed with d in {3072, 12288, 196608}
(32x32x3, 64x64x3, 256x256x3).  Paper claims: high performance at extreme
(k, d), with the headline "less than 18 seconds per iteration ... with
196,608 data dimensions and 2,000 centroids by applying 4,096 nodes".
"""

from __future__ import annotations

from typing import Dict

from ..data.datasets import TABLE_II
from ..perfmodel.model import PerformanceModel
from ..machine.specs import sunway_spec
from ..perfmodel.sweep import Series, sweep
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput, monotone_nondecreasing

KS = [128, 256, 512, 1024, 2048]
DS = [3072, 12288, 196_608]
NODES = 4096

#: The abstract's headline configuration.
HEADLINE_K = 2000
HEADLINE_D = 196_608
HEADLINE_SECONDS = 18.0


def run() -> ExperimentOutput:
    """Regenerate Figure 5 plus the paper's headline check."""
    n = TABLE_II["ilsvrc2012"].n
    series: Dict[str, Series] = {}
    checks: Dict[str, bool] = {}
    for d in DS:
        swept = sweep("k", KS, levels=[3], n=n, k=0, d=d, nodes=NODES)
        s = swept[3]
        s.label = f"d={d:,}"
        series[s.label] = s
        checks[f"d={d}: Level 3 feasible over the whole k range"] = (
            len(s.finite()) == len(KS)
        )
        checks[f"d={d}: completion time grows with k"] = (
            monotone_nondecreasing(s.y, slack=0.05)
        )
    # Larger d costs more at the largest k.
    last = [series[f"d={d:,}"].y[-1] for d in DS]
    checks["largest d is the most expensive at k=2048"] = (
        last[-1] == max(last)
    )
    headline = PerformanceModel(sunway_spec(NODES)).predict(
        3, n, HEADLINE_K, HEADLINE_D)
    checks[
        f"headline: k={HEADLINE_K}, d={HEADLINE_D:,} under "
        f"{HEADLINE_SECONDS:.0f} s/iteration on {NODES} nodes"
    ] = headline.feasible and headline.total < HEADLINE_SECONDS

    text = series_table(
        series, x_name="k",
        title=f"Figure 5: Level 3 on ILSVRC2012 (n={n:,}, {NODES} nodes)",
    )
    text += "\n\n" + series_sparklines(series)
    text += (f"\n\nheadline: {headline.total:.3f} s/iteration at "
             f"k={HEADLINE_K}, d={HEADLINE_D:,} (paper: < 18 s)")
    return ExperimentOutput(
        exp_id="figure5",
        title="Level 3 - dataflow, centroids and dimensions partition",
        text=text,
        series=series,
        checks=checks,
    )
