"""Figure 6 — Level 3 large-scale scalability in centroids and in nodes.

Two panels (paper section IV.C.3):

* centroids panel: scale k towards 160,000 at fixed d=3,072 on 128 nodes,
* nodes panel: scale the machine towards 4,096 nodes at fixed d=196,608 and
  k=2,000.

Paper claim: "As both k and d increase, the completion time from our
approach continues to scale well."
"""

from __future__ import annotations

from typing import Dict

from ..data.datasets import TABLE_II
from ..perfmodel.sweep import Series, sweep
from ..reporting.figures import series_sparklines, series_table
from .base import ExperimentOutput, monotone_nondecreasing, monotone_nonincreasing

K_SWEEP = [2000, 10_000, 20_000, 40_000, 80_000, 160_000]
K_PANEL_D = 3072
K_PANEL_NODES = 128

NODE_SWEEP = [512, 1024, 2048, 4096]
NODE_PANEL_D = 196_608
NODE_PANEL_K = 2000


def run() -> ExperimentOutput:
    """Regenerate both panels of Figure 6."""
    n = TABLE_II["ilsvrc2012"].n
    checks: Dict[str, bool] = {}

    k_panel = sweep("k", K_SWEEP, levels=[3], n=n, k=0, d=K_PANEL_D,
                    nodes=K_PANEL_NODES)[3]
    k_panel.label = f"k sweep (d={K_PANEL_D}, {K_PANEL_NODES} nodes)"
    checks["centroids panel: feasible up to k=160,000"] = (
        len(k_panel.finite()) == len(K_SWEEP)
    )
    checks["centroids panel: time grows with k"] = (
        monotone_nondecreasing(k_panel.y, slack=0.05)
    )

    node_panel = sweep("nodes", NODE_SWEEP, levels=[3], n=n,
                       k=NODE_PANEL_K, d=NODE_PANEL_D, nodes=0)[3]
    node_panel.label = f"node sweep (d={NODE_PANEL_D:,}, k={NODE_PANEL_K})"
    checks["nodes panel: feasible at every node count"] = (
        len(node_panel.finite()) == len(NODE_SWEEP)
    )
    checks["nodes panel: time falls as nodes grow"] = (
        monotone_nonincreasing(node_panel.y, slack=0.02)
    )
    checks["nodes panel: near-linear strong scaling (>= 50% efficiency)"] = (
        node_panel.y[0] / node_panel.y[-1]
        >= 0.5 * (NODE_SWEEP[-1] / NODE_SWEEP[0])
    )

    series = {k_panel.label: k_panel, node_panel.label: node_panel}
    text = series_table(
        {k_panel.label: k_panel}, x_name="k",
        title="Figure 6 (centroids panel)",
    )
    text += "\n\n" + series_table(
        {node_panel.label: node_panel}, x_name="nodes",
        title="Figure 6 (nodes panel)",
    )
    text += "\n\n" + series_sparklines(series)
    return ExperimentOutput(
        exp_id="figure6",
        title="Level 3 - large-scale on centroids and nodes",
        text=text,
        series=series,
        checks=checks,
    )
