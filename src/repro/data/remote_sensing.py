"""Synthetic remote-sensing imagery for the land-cover application (Fig. 10).

The paper's application clusters DeepGlobe 2018 satellite images into 7 land
classes (urban, agriculture, rangeland, forest, water, barren, unknown) with
n = pixels-or-patches, k = 7, d = patch feature size (4096 = 32x32 RGB +
context in their setup).  DeepGlobe cannot be redistributed, so this module
synthesises images with the same statistical structure:

* a ground-truth class map made of smooth regions (low-frequency Gaussian
  fields argmax'd per class, giving contiguous land parcels),
* per-class spectral signatures with realistic intra-class texture noise,
* a patch extractor producing the flattened (n, d) feature matrix k-means
  consumes, plus the utilities to score a clustering against the ground
  truth (majority-vote class mapping + pixel accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError, DataShapeError

#: The 7 DeepGlobe classes in the paper's Figure 10.
CLASS_NAMES = (
    "urban", "agriculture", "rangeland", "forest", "water", "barren",
    "unknown",
)


@dataclass(frozen=True)
class LandCoverImage:
    """A synthetic satellite tile with dense ground truth."""

    #: (H, W, 3) float reflectance in [0, 1].
    pixels: np.ndarray
    #: (H, W) int ground-truth class per pixel.
    labels: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.pixels.shape[:2]

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1


def synth_land_cover(height: int = 256, width: int = 256,
                     n_classes: int = 7, smoothness: float = 12.0,
                     texture: float = 0.03, seed: int = 0) -> LandCoverImage:
    """Generate one synthetic land-cover tile.

    ``smoothness`` is the Gaussian-filter sigma shaping region size (bigger
    = larger contiguous parcels); ``texture`` is intra-class noise sigma.
    """
    if height < 8 or width < 8:
        raise ConfigurationError(
            f"image must be at least 8x8, got {height}x{width}"
        )
    if not 2 <= n_classes <= len(CLASS_NAMES):
        raise ConfigurationError(
            f"n_classes must be in [2, {len(CLASS_NAMES)}], got {n_classes}"
        )
    rng = np.random.default_rng(seed)
    # Smooth random field per class; per-pixel argmax yields contiguous
    # regions (a standard trick for synthetic segmentation ground truth).
    fields = np.stack([
        ndimage.gaussian_filter(rng.normal(size=(height, width)), smoothness)
        for _ in range(n_classes)
    ])
    labels = np.argmax(fields, axis=0).astype(np.int64)

    # Spectral signatures: distinct mean RGB per class, loosely matching the
    # palette of the paper's figure (water dark blue, forest dark green...).
    base_palette = np.array([
        [0.55, 0.50, 0.52],   # urban: grey-pink
        [0.75, 0.70, 0.30],   # agriculture: yellow-green
        [0.65, 0.55, 0.40],   # rangeland: tan
        [0.10, 0.40, 0.15],   # forest: dark green
        [0.05, 0.15, 0.45],   # water: dark blue
        [0.70, 0.65, 0.60],   # barren: light grey
        [0.30, 0.30, 0.30],   # unknown: dark grey
    ])
    palette = base_palette[:n_classes]
    pixels = palette[labels] + rng.normal(0.0, texture,
                                          size=(height, width, 3))
    np.clip(pixels, 0.0, 1.0, out=pixels)
    return LandCoverImage(pixels=pixels, labels=labels)


def extract_patches(image: LandCoverImage, patch: int = 4
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Tile the image into non-overlapping patches and flatten them.

    Returns
    -------
    X : (n_patches, patch*patch*3) feature matrix — the paper's
        "classification sample can be a block of pixels" formulation, where
        d grows with the patch size (d=4096 for their 2k x 2k tiles).
    patch_labels : (n_patches,) majority ground-truth class per patch.
    """
    if patch < 1:
        raise ConfigurationError(f"patch must be >= 1, got {patch}")
    h, w = image.shape
    if h % patch or w % patch:
        raise DataShapeError(
            f"image {h}x{w} is not divisible into {patch}x{patch} patches"
        )
    ph, pw = h // patch, w // patch
    # (ph, pw, patch, patch, 3) view, then flatten per patch.
    blocks = image.pixels.reshape(ph, patch, pw, patch, 3).swapaxes(1, 2)
    X = blocks.reshape(ph * pw, patch * patch * 3)

    lab_blocks = image.labels.reshape(ph, patch, pw, patch).swapaxes(1, 2)
    lab_flat = lab_blocks.reshape(ph * pw, patch * patch)
    n_classes = image.n_classes
    votes = np.stack([(lab_flat == c).sum(axis=1) for c in range(n_classes)],
                     axis=1)
    return np.ascontiguousarray(X), np.argmax(votes, axis=1).astype(np.int64)


def majority_class_map(assignments: np.ndarray, truth: np.ndarray,
                       k: int) -> Dict[int, int]:
    """Map each cluster to the ground-truth class it mostly overlaps.

    Standard evaluation for unsupervised segmentation: cluster j is scored
    as the class that the plurality of its members carry.
    """
    if assignments.shape != truth.shape:
        raise DataShapeError(
            f"assignments {assignments.shape} != truth {truth.shape}"
        )
    mapping: Dict[int, int] = {}
    n_classes = int(truth.max()) + 1
    for j in range(k):
        members = truth[assignments == j]
        if members.size == 0:
            mapping[j] = 0
            continue
        mapping[j] = int(np.bincount(members, minlength=n_classes).argmax())
    return mapping


def classification_accuracy(assignments: np.ndarray, truth: np.ndarray,
                            k: int) -> float:
    """Pixel/patch accuracy after majority-vote cluster-to-class mapping."""
    mapping = majority_class_map(assignments, truth, k)
    predicted = np.vectorize(mapping.__getitem__)(assignments)
    return float((predicted == truth).mean())
