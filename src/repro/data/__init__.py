"""Workload generators and the paper's benchmark dataset registry."""

from .datasets import TABLE_II, DatasetSpec, dataset
from .preprocess import (
    MinMaxScaler,
    PCA,
    StandardScaler,
    simplex_blobs,
)
from .remote_sensing import (
    CLASS_NAMES,
    LandCoverImage,
    classification_accuracy,
    extract_patches,
    majority_class_map,
    synth_land_cover,
)
from .synthetic import (
    anisotropic_blobs,
    feature_vectors,
    gaussian_blobs,
    uniform_cloud,
)

__all__ = [
    "CLASS_NAMES",
    "DatasetSpec",
    "MinMaxScaler",
    "PCA",
    "StandardScaler",
    "simplex_blobs",
    "LandCoverImage",
    "TABLE_II",
    "anisotropic_blobs",
    "classification_accuracy",
    "dataset",
    "extract_patches",
    "feature_vectors",
    "gaussian_blobs",
    "majority_class_map",
    "synth_land_cover",
    "uniform_cloud",
]
