"""Deterministic synthetic workload generators.

One-iteration k-means time is data-oblivious — every sample computes k
distances regardless of its value — so synthetic data with the right (n, d)
exercises exactly the code path the paper measures.  For the *quality*
demonstrations (land cover, convergence tests) the generators produce data
with real cluster structure so the algorithms have something to find.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def gaussian_blobs(n: int, k: int, d: int, spread: float = 0.08,
                   box: float = 1.0, seed: int | np.random.Generator | None = 0,
                   dtype: np.dtype | type = np.float64,
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """An isotropic Gaussian mixture with k well-separated components.

    Returns
    -------
    X : (n, d) samples
    labels : (n,) ground-truth component of each sample

    Component centres are uniform in ``[-box, box]^d``; component sizes are
    balanced up to rounding.  ``spread`` is the per-axis standard deviation
    relative to the box size.
    """
    if n < 1 or k < 1 or d < 1:
        raise ConfigurationError(f"n, k, d must be >= 1, got {n}, {k}, {d}")
    if k > n:
        raise ConfigurationError(f"k={k} exceeds n={n}")
    rng = _rng(seed)
    centres = rng.uniform(-box, box, size=(k, d))
    labels = np.arange(n) % k  # balanced up to one sample
    rng.shuffle(labels)
    X = centres[labels] + rng.normal(0.0, spread * box, size=(n, d))
    return X.astype(np.dtype(dtype), copy=False), labels


def uniform_cloud(n: int, d: int, low: float = 0.0, high: float = 1.0,
                  seed: int | np.random.Generator | None = 0,
                  dtype: np.dtype | type = np.float64) -> np.ndarray:
    """Structureless uniform data — the worst case for convergence speed."""
    if n < 1 or d < 1:
        raise ConfigurationError(f"n and d must be >= 1, got {n}, {d}")
    rng = _rng(seed)
    return rng.uniform(low, high, size=(n, d)).astype(np.dtype(dtype),
                                                      copy=False)


def anisotropic_blobs(n: int, k: int, d: int, condition: float = 10.0,
                      seed: int | np.random.Generator | None = 0,
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian mixture with per-component random anisotropic covariance.

    ``condition`` is the ratio between the largest and smallest axis scale;
    stresses k-means' spherical-cluster assumption in quality tests.
    """
    if condition < 1.0:
        raise ConfigurationError(
            f"condition must be >= 1, got {condition}"
        )
    rng = _rng(seed)
    X, labels = gaussian_blobs(n, k, d, seed=rng)
    for j in range(k):
        mask = labels == j
        centre = X[mask].mean(axis=0)
        scales = np.exp(rng.uniform(0.0, np.log(condition), size=d))
        scales /= scales.max()
        X[mask] = centre + (X[mask] - centre) * scales
    return X, labels


def feature_vectors(n: int, d: int, n_latent: Optional[int] = None,
                    seed: int | np.random.Generator | None = 0,
                    dtype: np.dtype | type = np.float64) -> np.ndarray:
    """High-dimensional vectors with low intrinsic dimensionality.

    Mimics image-descriptor workloads (the ILSVRC2012 stand-in): samples lie
    near an ``n_latent``-dimensional subspace embedded in d dimensions, the
    regime the paper's intro motivates ("intrinsically high dimensional
    feature space where traditional dimensionality reduction techniques are
    commonly used").
    """
    if n < 1 or d < 1:
        raise ConfigurationError(f"n and d must be >= 1, got {n}, {d}")
    rng = _rng(seed)
    if n_latent is None:
        n_latent = max(2, min(64, d // 8))
    if not 1 <= n_latent <= d:
        raise ConfigurationError(
            f"n_latent must be in [1, d={d}], got {n_latent}"
        )
    basis = rng.normal(size=(n_latent, d)) / np.sqrt(d)
    coeffs = rng.normal(size=(n, n_latent))
    noise = 0.01 * rng.normal(size=(n, d))
    return (coeffs @ basis + noise).astype(np.dtype(dtype), copy=False)
