"""Feature preprocessing: scaling and PCA projection.

The paper motivates native high-dimensional clustering against the common
practice of dimensionality reduction ("applicable to any problem with an
intrinsically high dimensional feature space where traditional
dimensionality reduction techniques are commonly used").  These utilities
make that comparison runnable: standardise/minmax scaling for real data
hygiene, and a thin-SVD PCA whose collapse on intrinsically
high-dimensional structure the ``extra_dimreduction`` experiment
demonstrates.

All transformers follow the fit/transform convention and are pure NumPy
(thin SVD via scipy when available, else numpy.linalg).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy import linalg as sla

from ..errors import ConfigurationError, DataShapeError


def _check_matrix(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise DataShapeError(f"X must be a non-empty 2-D matrix, got {X.shape}")
    return X


@dataclass
class StandardScaler:
    """Zero-mean, unit-variance scaling (constant features left at zero)."""

    mean_: Optional[np.ndarray] = field(default=None, repr=False)
    scale_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = _check_matrix(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise ConfigurationError("fit() must be called before transform()")
        X = _check_matrix(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise DataShapeError(
                f"expected d={self.mean_.shape[0]}, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise ConfigurationError("fit() must be called before inverse")
        return np.asarray(X) * self.scale_ + self.mean_


@dataclass
class MinMaxScaler:
    """Scale each feature to [0, 1] (constant features map to 0)."""

    min_: Optional[np.ndarray] = field(default=None, repr=False)
    range_: Optional[np.ndarray] = field(default=None, repr=False)

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = _check_matrix(X)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise ConfigurationError("fit() must be called before transform()")
        X = _check_matrix(X)
        if X.shape[1] != self.min_.shape[0]:
            raise DataShapeError(
                f"expected d={self.min_.shape[0]}, got {X.shape[1]}"
            )
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@dataclass
class PCA:
    """Principal component analysis via thin SVD.

    Parameters
    ----------
    n_components:
        Output dimensionality (1 <= n_components <= d).
    whiten:
        Scale projected components to unit variance.
    """

    n_components: int = 2
    whiten: bool = False
    mean_: Optional[np.ndarray] = field(default=None, repr=False)
    components_: Optional[np.ndarray] = field(default=None, repr=False)
    explained_variance_: Optional[np.ndarray] = field(default=None,
                                                      repr=False)

    def fit(self, X: np.ndarray) -> "PCA":
        X = _check_matrix(X)
        n, d = X.shape
        if not 1 <= self.n_components <= min(n, d):
            raise ConfigurationError(
                f"n_components must be in [1, min(n, d)={min(n, d)}], "
                f"got {self.n_components}"
            )
        self.mean_ = X.mean(axis=0)
        centred = X - self.mean_
        # Thin SVD: the guides' lesson — never the full decomposition.
        _, s, vt = sla.svd(centred, full_matrices=False)
        self.components_ = vt[:self.n_components]
        self.explained_variance_ = (s[:self.n_components] ** 2) / max(n - 1, 1)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise ConfigurationError("fit() must be called before transform()")
        X = _check_matrix(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise DataShapeError(
                f"expected d={self.mean_.shape[0]}, got {X.shape[1]}"
            )
        projected = (X - self.mean_) @ self.components_.T
        if self.whiten:
            projected /= np.sqrt(np.maximum(self.explained_variance_, 1e-30))
        return projected

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def explained_variance_ratio(self) -> np.ndarray:
        if self.explained_variance_ is None:
            raise ConfigurationError("fit() must be called first")
        total = self.explained_variance_.sum()
        return self.explained_variance_ / total if total > 0 else \
            np.zeros_like(self.explained_variance_)


def simplex_blobs(n: int, k: int, d: int, noise: float = 0.08,
                  seed: int = 0):
    """Blobs on the one-hot simplex: intrinsically k-dimensional structure.

    Cluster j's centre is the j-th standard basis vector of R^d, so the k
    centres span a (k-1)-dimensional simplex and *no* projection far below
    k dimensions can keep them apart — the regime the paper's introduction
    motivates ("intrinsically high dimensional feature space where
    traditional dimensionality reduction techniques are commonly used").
    Full-dimensional k-means recovers the classes; PCA to a handful of
    components collapses them (see the ``extra_dimreduction`` experiment).

    Returns (X, labels) with k <= d required.
    """
    if not 1 <= k <= d:
        raise ConfigurationError(f"need 1 <= k <= d, got k={k}, d={d}")
    if k > n:
        raise ConfigurationError(f"k={k} exceeds n={n}")
    if noise < 0:
        raise ConfigurationError(f"noise must be >= 0, got {noise}")
    rng = np.random.default_rng(seed)
    centres = np.zeros((k, d))
    centres[np.arange(k), np.arange(k)] = 1.0
    labels = np.arange(n) % k
    rng.shuffle(labels)
    X = centres[labels] + rng.normal(0.0, noise, size=(n, d))
    return X, labels
