"""Registry of the paper's benchmark datasets (Table II) as synthetic stand-ins.

The paper evaluates on three UCI datasets plus ImgNet ILSVRC2012 features:

=================  =========  ========  =========
Dataset            n          k (paper) d
=================  =========  ========  =========
Kegg Network       65,554     256       28
Road Network       434,874    10,000    4
US Census 1990     2,458,285  10,000    68
ILSVRC2012         1,265,723  160,000   196,608
=================  =========  ========  =========

We cannot ship those datasets, but one-iteration time — the paper's only
metric — depends on (n, k, d) alone, so deterministic synthetic data with the
published shapes exercises the identical code path (see DESIGN.md §2).  Each
entry generates either the full-shape dataset (for cost modelling, which
never materialises it) or a ``scale``-reduced sample (for actual execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import ConfigurationError
from .synthetic import feature_vectors, gaussian_blobs

#: A generator maps (n, d, seed) -> (n, d) array.
Generator = Callable[[int, int, int], np.ndarray]


def _blob_generator(k_hint: int) -> Generator:
    def gen(n: int, d: int, seed: int) -> np.ndarray:
        X, _ = gaussian_blobs(n=n, k=min(k_hint, n), d=d, seed=seed)
        return X
    return gen


def _feature_generator() -> Generator:
    def gen(n: int, d: int, seed: int) -> np.ndarray:
        return feature_vectors(n=n, d=d, seed=seed)
    return gen


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table II."""

    name: str
    n: int
    d: int
    #: The k the paper pairs this dataset with in Table II.
    paper_k: int
    source: str
    generator: Generator

    def shape(self) -> Tuple[int, int]:
        return (self.n, self.d)

    def load(self, scale: float = 1.0, seed: int = 0,
             max_n: int | None = None, max_d: int | None = None) -> np.ndarray:
        """Generate the dataset, optionally scaled down for execution.

        Parameters
        ----------
        scale:
            Fraction in (0, 1] applied to both n and d (floor 8 samples /
            1 dim, and never above the published shape).
        max_n, max_d:
            Hard caps applied after scaling (for laptop-scale runs).
        """
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        n = max(8, int(self.n * scale))
        d = max(1, int(self.d * scale))
        if max_n is not None:
            n = min(n, int(max_n))
        if max_d is not None:
            d = min(d, int(max_d))
        n, d = min(n, self.n), min(d, self.d)
        return self.generator(n, d, seed)


#: Table II of the paper.
TABLE_II: Dict[str, DatasetSpec] = {
    "kegg": DatasetSpec(
        name="Kegg Network", n=65_554, d=28, paper_k=256,
        source="UCI", generator=_blob_generator(256),
    ),
    "road": DatasetSpec(
        name="Road Network", n=434_874, d=4, paper_k=10_000,
        source="UCI", generator=_blob_generator(64),
    ),
    "census": DatasetSpec(
        name="US Census 1990", n=2_458_285, d=68, paper_k=10_000,
        source="UCI", generator=_blob_generator(128),
    ),
    "ilsvrc2012": DatasetSpec(
        name="ILSVRC2012 (ImgNet)", n=1_265_723, d=196_608, paper_k=160_000,
        source="ImgNet", generator=_feature_generator(),
    ),
}


def dataset(name: str) -> DatasetSpec:
    """Look up a Table II dataset by key (kegg/road/census/ilsvrc2012)."""
    try:
        return TABLE_II[name]
    except KeyError:
        known = ", ".join(sorted(TABLE_II))
        raise ConfigurationError(
            f"unknown dataset {name!r}; known datasets: {known}"
        ) from None
