"""Simulated Sunway TaihuLight machine model.

The machine substrate reproduces the hardware hierarchy the paper's
partitioning strategy is built around:

* :mod:`repro.machine.specs` — frozen dataclasses with the published
  SW26010/TaihuLight parameters (CPE meshes, LDM sizes, bandwidths).
* :mod:`repro.machine.ldm` — the 64 KB scratchpad allocator whose capacity
  *is* the paper's C1/C2/C3 feasibility constraints.
* :mod:`repro.machine.core_group` — one MPE + 8x8 CPE mesh.
* :mod:`repro.machine.topology` — the two-level fat tree with supernode
  locality.
* :mod:`repro.machine.machine` — the facade tying it together, including
  supernode-aware CG-group placement.
"""

from .core_group import CPE, CoreGroup
from .ldm import Allocation, LDMAllocator
from .machine import (
    DegradedMachine,
    Machine,
    machine_from_preset,
    sunway_machine,
    toy_machine,
)
from .render import render_level3_partition, render_machine, render_processor
from .specs import (
    CGSpec,
    CPESpec,
    MachineSpec,
    NetworkSpec,
    ProcessorSpec,
    PRESETS,
    preset,
    sunway_spec,
    toy_spec,
)
from .topology import FatTreeTopology, build_topology

__all__ = [
    "Allocation",
    "CGSpec",
    "CPE",
    "CPESpec",
    "CoreGroup",
    "DegradedMachine",
    "FatTreeTopology",
    "LDMAllocator",
    "Machine",
    "MachineSpec",
    "NetworkSpec",
    "PRESETS",
    "ProcessorSpec",
    "build_topology",
    "machine_from_preset",
    "preset",
    "render_level3_partition",
    "render_machine",
    "render_processor",
    "sunway_machine",
    "sunway_spec",
    "toy_machine",
    "toy_spec",
]
