"""Local Directive Memory (LDM) allocator.

Each CPE of the SW26010 has a 64 KB software-managed scratchpad instead of a
data cache.  On the real machine the programmer explicitly stages buffers in
and out of the LDM with DMA; a buffer set that does not fit simply cannot be
compiled/run.  The allocator below models exactly that budget: named
allocations against a fixed byte capacity, with an
:class:`~repro.errors.LDMOverflowError` when the budget would be exceeded.

The k-means levels use this to *prove* feasibility of a partition plan — the
paper's constraints C1/C2/C3 are precisely "this buffer set fits in LDM".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from ..errors import ConfigurationError, LDMOverflowError


@dataclass(frozen=True)
class Allocation:
    """One named reservation inside an LDM."""

    label: str
    nbytes: int
    offset: int


class LDMAllocator:
    """Bump allocator over a fixed scratchpad budget.

    The real LDM is managed by the programmer as a flat buffer; a bump
    allocator with explicit ``free``/``reset`` mirrors the way the k-means
    kernels stage long-lived buffers (centroid slices, accumulators) at the
    bottom and streaming buffers (the current sample block) on top.

    Parameters
    ----------
    capacity_bytes:
        Total scratchpad size, 65,536 for the SW26010 CPE.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"LDM capacity must be positive, got {capacity_bytes}"
            )
        self._capacity = int(capacity_bytes)
        self._cursor = 0
        self._allocations: Dict[str, Allocation] = {}

    # -- introspection ----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self._capacity - self._cursor

    @property
    def high_water_bytes(self) -> int:
        """Top of the bump cursor; includes holes left by frees."""
        return self._cursor

    def __contains__(self, label: str) -> bool:
        return label in self._allocations

    def __iter__(self) -> Iterator[Allocation]:
        return iter(self._allocations.values())

    def __len__(self) -> int:
        return len(self._allocations)

    # -- allocation -------------------------------------------------------

    def alloc(self, label: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``label``.

        Raises
        ------
        LDMOverflowError
            If the reservation does not fit in the remaining budget.
        ConfigurationError
            If the label is already in use or nbytes is not positive.
        """
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise ConfigurationError(
                f"allocation {label!r} must have positive size, got {nbytes}"
            )
        if label in self._allocations:
            raise ConfigurationError(f"LDM label {label!r} already allocated")
        if self._cursor + nbytes > self._capacity:
            raise LDMOverflowError(
                requested=nbytes,
                available=self._capacity - self._cursor,
                capacity=self._capacity,
                label=label,
            )
        allocation = Allocation(label=label, nbytes=nbytes, offset=self._cursor)
        self._cursor += nbytes
        self._allocations[label] = allocation
        return allocation

    def alloc_array(self, label: str, shape: Tuple[int, ...],
                    dtype: np.dtype | type = np.float64) -> Allocation:
        """Reserve room for an ndarray of ``shape``/``dtype``."""
        itemsize = np.dtype(dtype).itemsize
        n_items = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return self.alloc(label, n_items * itemsize)

    def free(self, label: str) -> None:
        """Release an allocation.

        The bump cursor only retreats when the top-most allocation is freed
        (LIFO discipline, like stack staging on the real LDM); freeing an
        interior allocation releases its accounting but not its address space
        until everything above it is freed too.
        """
        try:
            allocation = self._allocations.pop(label)
        except KeyError:
            raise ConfigurationError(f"LDM label {label!r} is not allocated") from None
        # Retreat the cursor past any trailing free space.
        if allocation.offset + allocation.nbytes == self._cursor:
            self._cursor = allocation.offset
            while self._allocations:
                top = max(self._allocations.values(),
                          key=lambda a: a.offset + a.nbytes)
                if top.offset + top.nbytes == self._cursor:
                    break
                self._cursor = max(
                    (a.offset + a.nbytes for a in self._allocations.values()),
                    default=0,
                )
                break

    def reset(self) -> None:
        """Release every allocation at once."""
        self._allocations.clear()
        self._cursor = 0

    def would_fit(self, nbytes: int) -> bool:
        """True if a further allocation of ``nbytes`` would succeed."""
        return self._cursor + int(nbytes) <= self._capacity

    def report(self) -> str:
        """Human-readable allocation map for debugging partition plans."""
        lines = [
            f"LDM {self.used_bytes}/{self._capacity} B used "
            f"({100.0 * self.used_bytes / self._capacity:.1f}%)"
        ]
        for a in sorted(self._allocations.values(), key=lambda a: a.offset):
            lines.append(f"  [{a.offset:6d}..{a.offset + a.nbytes:6d}) {a.label}"
                         f" ({a.nbytes} B)")
        return "\n".join(lines)
