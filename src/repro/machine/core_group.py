"""Core-group model: one MPE plus an 8x8 mesh of CPEs with per-CPE LDM.

A :class:`CoreGroup` is the unit the Level-3 algorithm treats as "one basic
computing unit": it holds one d-dimensional sample with the dimensions split
across its CPEs.  The class tracks per-CPE LDM allocators and exposes the
mesh coordinates used by the register-communication model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from .ldm import LDMAllocator
from .specs import CGSpec


@dataclass(frozen=True)
class CPE:
    """One Computing Processing Element: mesh position + LDM allocator.

    ``row``/``col`` are the coordinates on the CG's mesh, used by the
    register-communication cost model (row/column bus hops).
    """

    cg_index: int
    index: int
    row: int
    col: int
    ldm: LDMAllocator

    @property
    def global_label(self) -> str:
        return f"cg{self.cg_index}/cpe{self.index}"


class CoreGroup:
    """An SW26010 core group: management core + CPE mesh.

    Parameters
    ----------
    index:
        Global CG index within the machine (0-based).
    spec:
        Hardware description of the CG.
    node_index:
        Index of the node this CG lives on (used for network locality).
    """

    def __init__(self, index: int, spec: CGSpec, node_index: int) -> None:
        if index < 0:
            raise ConfigurationError(f"CG index must be >= 0, got {index}")
        self.index = index
        self.spec = spec
        self.node_index = node_index
        self._cpes: List[CPE] = [
            CPE(
                cg_index=index,
                index=i,
                row=i // spec.mesh_cols,
                col=i % spec.mesh_cols,
                ldm=LDMAllocator(spec.cpe.ldm_bytes),
            )
            for i in range(spec.n_cpes)
        ]

    # -- structure ---------------------------------------------------------

    @property
    def n_cpes(self) -> int:
        return self.spec.n_cpes

    @property
    def cpes(self) -> Tuple[CPE, ...]:
        return tuple(self._cpes)

    def cpe(self, i: int) -> CPE:
        try:
            return self._cpes[i]
        except IndexError:
            raise ConfigurationError(
                f"CG {self.index} has {self.n_cpes} CPEs; no CPE {i}"
            ) from None

    def mesh_position(self, cpe_index: int) -> Tuple[int, int]:
        """(row, col) of a CPE on the mesh."""
        c = self.cpe(cpe_index)
        return (c.row, c.col)

    # -- LDM management ----------------------------------------------------

    def reset_ldm(self) -> None:
        """Release every allocation on every CPE of this CG."""
        for c in self._cpes:
            c.ldm.reset()

    def alloc_on_all(self, label: str, nbytes_per_cpe: int) -> None:
        """Reserve the same buffer on every CPE (e.g. a broadcast sample slice).

        If any CPE overflows, allocations made by this call are rolled back so
        the CG is left unchanged.
        """
        done: List[CPE] = []
        try:
            for c in self._cpes:
                c.ldm.alloc(label, nbytes_per_cpe)
                done.append(c)
        except Exception:
            for c in done:
                c.ldm.free(label)
            raise

    def free_on_all(self, label: str) -> None:
        for c in self._cpes:
            if label in c.ldm:
                c.ldm.free(label)

    @property
    def ldm_used_bytes(self) -> int:
        """Total bytes allocated across the CG's LDMs."""
        return sum(c.ldm.used_bytes for c in self._cpes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CoreGroup(index={self.index}, node={self.node_index}, "
                f"cpes={self.n_cpes})")
