"""Two-level fat-tree network topology of Sunway TaihuLight.

The interconnect joins 256-node *supernodes* through a central routing
server.  We model it as a graph (networkx) with three tiers:

``node -> supernode switch -> central switch``

Messages between nodes of the same supernode traverse one switch; messages
between supernodes traverse the central router, paying extra latency and a
bandwidth derating (`NetworkSpec.inter_supernode_bw_factor`).  The paper
relies on this asymmetry: "the intra super-node communication is more
efficient than the inter super-node communication.  Therefore ... we should
make a CG group located within a super-node if possible" (section III.C),
and attributes the non-monotonic dips in Figure 7 to "crossing of
communication boundaries".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

from ..errors import ConfigurationError
from .specs import MachineSpec, NetworkSpec


class FatTreeTopology:
    """Two-level fat tree over the machine's nodes.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes.
    network:
        Bandwidth/latency parameters.
    """

    def __init__(self, n_nodes: int, network: NetworkSpec) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.network = network
        self._supernode_of: Dict[int, int] = {
            node: node // network.nodes_per_supernode for node in range(n_nodes)
        }
        self._graph = self._build_graph()

    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        n_super = self.n_supernodes
        for node in range(self.n_nodes):
            g.add_node(("node", node))
        for s in range(n_super):
            g.add_node(("switch", s))
        g.add_node(("central", 0))
        for node in range(self.n_nodes):
            s = self._supernode_of[node]
            g.add_edge(("node", node), ("switch", s),
                       bandwidth=self.network.link_bw,
                       latency=self.network.intra_latency / 2.0)
        for s in range(n_super):
            g.add_edge(("switch", s), ("central", 0),
                       bandwidth=self.network.link_bw
                       * self.network.inter_supernode_bw_factor,
                       latency=self.network.inter_latency / 2.0)
        return g

    # -- queries -----------------------------------------------------------

    @property
    def n_supernodes(self) -> int:
        per = self.network.nodes_per_supernode
        return (self.n_nodes + per - 1) // per

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes, switches, central router)."""
        return self._graph

    def supernode_of(self, node: int) -> int:
        try:
            return self._supernode_of[node]
        except KeyError:
            raise ConfigurationError(
                f"node {node} out of range [0, {self.n_nodes})"
            ) from None

    def same_supernode(self, a: int, b: int) -> bool:
        return self.supernode_of(a) == self.supernode_of(b)

    def nodes_in_supernode(self, s: int) -> List[int]:
        per = self.network.nodes_per_supernode
        lo, hi = s * per, min((s + 1) * per, self.n_nodes)
        if lo >= self.n_nodes:
            raise ConfigurationError(f"supernode {s} out of range")
        return list(range(lo, hi))

    def hop_count(self, a: int, b: int) -> int:
        """Switch hops between two nodes (0 if identical)."""
        if a == b:
            return 0
        return 2 if self.same_supernode(a, b) else 4

    def path(self, a: int, b: int) -> List[Tuple[str, int]]:
        """Shortest switch path between two nodes on the fat-tree graph."""
        return nx.shortest_path(self._graph, ("node", a), ("node", b))

    # -- message cost model --------------------------------------------------

    def point_to_point_time(self, a: int, b: int, nbytes: int) -> float:
        """Time (s) for one point-to-point message of ``nbytes`` from a to b.

        Same-node transfers go through shared DDR3 and are charged zero
        network time here (the DMA model accounts for memory traffic).
        """
        if a == b:
            return 0.0
        same = self.same_supernode(a, b)
        bw = self.network.bandwidth(same)
        lat = self.network.latency(same)
        return lat + nbytes / bw

    def bisection_bandwidth(self, nodes: Iterable[int]) -> float:
        """Worst-case pairwise bandwidth among a set of nodes (bytes/s).

        A CG group spanning supernodes is throttled by the central-router
        links; one fully inside a supernode gets the full link bandwidth.
        """
        nodes = list(nodes)
        if not nodes:
            raise ConfigurationError("node set must be non-empty")
        supers = {self.supernode_of(n) for n in nodes}
        return self.network.bandwidth(same_supernode=(len(supers) <= 1))

    def spans_supernodes(self, nodes: Iterable[int]) -> bool:
        return len({self.supernode_of(n) for n in nodes}) > 1


def build_topology(spec: MachineSpec) -> FatTreeTopology:
    """Construct the fat-tree topology described by a machine spec."""
    return FatTreeTopology(spec.n_nodes, spec.network)
