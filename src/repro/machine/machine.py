"""Machine facade: nodes, core groups, topology, and CG-group placement.

A :class:`Machine` instantiates the full hierarchy described by a
:class:`~repro.machine.specs.MachineSpec` — nodes, each carrying one SW26010
processor with its CGs and CPEs — plus the fat-tree topology.  It also owns
the *placement* logic the paper calls out in section III.C: when the Level-3
algorithm groups ``m'group`` CGs to share the centroid set, the group should
be placed inside one supernode whenever it fits, because intra-supernode
communication is faster.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ..errors import ConfigurationError
from .core_group import CoreGroup
from .specs import MachineSpec, preset, sunway_spec, toy_spec
from .topology import FatTreeTopology, build_topology

__all__ = ["DegradedMachine", "Machine", "sunway_machine", "toy_machine"]


class Machine:
    """The simulated machine: an indexable collection of core groups.

    Core groups are numbered globally, node-major: CG ``i`` lives on node
    ``i // cgs_per_node``.  All algorithm-level code addresses CGs by this
    global index; the topology translates CG indices to node locality.
    """

    def __init__(self, spec: MachineSpec, materialize_ldm: bool = True) -> None:
        self.spec = spec
        self.topology: FatTreeTopology = build_topology(spec)
        self._cgs_per_node = spec.processor.n_cgs
        self._materialized = bool(materialize_ldm)
        # Materialising one CoreGroup object per CG is fine up to a few
        # thousand nodes; the pure model backend passes
        # materialize_ldm=False to stay O(1) in memory at 4,096 nodes.
        self._core_groups: List[CoreGroup] = []
        if self._materialized:
            self._core_groups = [
                CoreGroup(index=i, spec=spec.processor.cg,
                          node_index=i // self._cgs_per_node)
                for i in range(spec.n_cgs)
            ]

    # -- structure -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    @property
    def n_cgs(self) -> int:
        return self.spec.n_cgs

    @property
    def n_cpes(self) -> int:
        return self.spec.n_cpes

    @property
    def cpes_per_cg(self) -> int:
        return self.spec.processor.cg.n_cpes

    @property
    def cgs_per_node(self) -> int:
        return self._cgs_per_node

    @property
    def ldm_bytes(self) -> int:
        """LDM capacity of a single CPE in bytes."""
        return self.spec.ldm_bytes_per_cpe

    def node_of_cg(self, cg_index: int) -> int:
        if not 0 <= cg_index < self.n_cgs:
            raise ConfigurationError(
                f"CG index {cg_index} out of range [0, {self.n_cgs})"
            )
        return cg_index // self._cgs_per_node

    def core_group(self, cg_index: int) -> CoreGroup:
        if not self._materialized:
            raise ConfigurationError(
                "machine was built with materialize_ldm=False; "
                "core-group objects are not available"
            )
        if not 0 <= cg_index < self.n_cgs:
            raise ConfigurationError(
                f"CG index {cg_index} out of range [0, {self.n_cgs})"
            )
        return self._core_groups[cg_index]

    def core_groups(self) -> Iterator[CoreGroup]:
        for i in range(self.n_cgs):
            yield self.core_group(i)

    def reset_ldm(self) -> None:
        """Release every LDM allocation on the machine."""
        if self._materialized:
            for cg in self._core_groups:
                cg.reset_ldm()

    # -- CG-group placement ----------------------------------------------------

    def place_cg_groups(self, group_size: int, n_groups: int,
                        supernode_aware: bool = True) -> List[List[int]]:
        """Partition CGs into groups of ``group_size``, minding supernodes.

        Returns a list of ``n_groups`` lists of global CG indices.  With
        ``supernode_aware=True`` (the paper's strategy) groups are laid out
        contiguously so that a group stays inside one supernode whenever
        ``group_size`` CGs fit there; with ``False`` groups are strided
        round-robin across the machine, the worst case for locality, used by
        the placement ablation benchmark.

        Raises
        ------
        ConfigurationError
            If ``group_size * n_groups`` exceeds the number of CGs.
        """
        if group_size < 1 or n_groups < 1:
            raise ConfigurationError(
                f"group_size and n_groups must be >= 1, got "
                f"{group_size}, {n_groups}"
            )
        total = group_size * n_groups
        if total > self.n_cgs:
            raise ConfigurationError(
                f"cannot place {n_groups} groups of {group_size} CGs on a "
                f"machine with {self.n_cgs} CGs"
            )
        if supernode_aware:
            return [
                list(range(g * group_size, (g + 1) * group_size))
                for g in range(n_groups)
            ]
        # Strided placement: group g takes CGs g, g+n_groups, g+2*n_groups, ...
        return [
            [g + member * n_groups for member in range(group_size)]
            for g in range(n_groups)
        ]

    def group_spans_supernodes(self, cg_indices: Sequence[int]) -> bool:
        """True if the CG group touches more than one supernode."""
        nodes = {self.node_of_cg(i) for i in cg_indices}
        return self.topology.spans_supernodes(nodes)

    def group_bandwidth(self, cg_indices: Sequence[int]) -> float:
        """Worst-case pairwise network bandwidth inside a CG group (bytes/s)."""
        nodes = {self.node_of_cg(i) for i in cg_indices}
        return self.topology.bisection_bandwidth(nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Machine(nodes={self.n_nodes}, cgs={self.n_cgs}, "
                f"cpes={self.n_cpes}, supernodes={self.topology.n_supernodes})")


class DegradedMachine(Machine):
    """A machine with some core groups marked failed and excised.

    The recovery path's ``replan`` policy re-plans the computation on the
    surviving CGs after a :class:`~repro.errors.CGFailedError`.  Rather than
    rebuilding a smaller :class:`~repro.machine.specs.MachineSpec` (which
    would renumber nodes and change link pricing), the degraded machine keeps
    the *physical* topology of the base machine and exposes a dense *logical*
    CG numbering over the survivors: logical CG ``i`` is the ``i``-th
    surviving physical CG.  Planners and communicators only consume
    ``n_cgs``/``node_of_cg``/``place_cg_groups``, so they transparently plan
    over the logical indices while traffic is still priced on the physical
    links the survivors actually occupy.
    """

    def __init__(self, base: Machine, failed_cgs: Sequence[int]) -> None:
        failed = sorted({int(c) for c in failed_cgs})
        for cg in failed:
            base.node_of_cg(cg)  # validates range on the *base* numbering
        survivors = [i for i in range(base.n_cgs) if i not in set(failed)]
        if not survivors:
            raise ConfigurationError(
                "cannot degrade a machine to zero surviving core groups"
            )
        super().__init__(base.spec, materialize_ldm=base._materialized)
        self.base = base
        self.failed_cgs = tuple(failed)
        self._survivors = survivors

    # -- structure (logical view over survivors) -------------------------------

    @property
    def n_cgs(self) -> int:
        return len(self._survivors)

    @property
    def n_cpes(self) -> int:
        return self.n_cgs * self.cpes_per_cg

    def physical_cg(self, cg_index: int) -> int:
        """Physical (base-machine) index of logical CG ``cg_index``."""
        if not 0 <= cg_index < self.n_cgs:
            raise ConfigurationError(
                f"CG index {cg_index} out of range [0, {self.n_cgs})"
            )
        return self._survivors[cg_index]

    def node_of_cg(self, cg_index: int) -> int:
        return self.physical_cg(cg_index) // self._cgs_per_node

    def core_group(self, cg_index: int) -> CoreGroup:
        physical = self.physical_cg(cg_index)
        if not self._materialized:
            raise ConfigurationError(
                "machine was built with materialize_ldm=False; "
                "core-group objects are not available"
            )
        return self._core_groups[physical]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DegradedMachine(survivors={self.n_cgs}, "
                f"failed={list(self.failed_cgs)})")


def sunway_machine(n_nodes: int = 1, materialize_ldm: bool | None = None) -> Machine:
    """A TaihuLight machine with ``n_nodes`` SW26010 nodes.

    ``materialize_ldm`` defaults to True for machines up to 512 nodes and
    False above that, so paper-scale (4,096-node) model runs stay cheap.
    """
    if materialize_ldm is None:
        materialize_ldm = n_nodes <= 512
    return Machine(sunway_spec(n_nodes), materialize_ldm=materialize_ldm)


def toy_machine(n_nodes: int = 1, cgs_per_node: int = 2, mesh: int = 2,
                ldm_bytes: int = 8 * 1024) -> Machine:
    """A miniature machine for tests and laptop-scale execution."""
    return Machine(toy_spec(n_nodes, cgs_per_node, mesh, ldm_bytes))


def machine_from_preset(name: str) -> Machine:
    """Build a machine from a named preset (see ``specs.PRESETS``)."""
    spec = preset(name)
    return Machine(spec, materialize_ldm=spec.n_nodes <= 512)
