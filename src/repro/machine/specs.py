"""Hardware specifications for the simulated Sunway TaihuLight machine.

Every number here is taken from the paper (section II.A and the experimental
setup in section IV.B) or from the TaihuLight system paper it cites [Fu et
al., 2016]:

* SW26010 processor: 4 core groups (CGs); each CG has 1 MPE + 64 CPEs laid
  out as an 8x8 mesh, running at 1.45 GHz.
* Each CPE has a 64 KB Local Directive Memory (LDM / scratchpad) and a 16 KB
  L1 instruction cache.
* Theoretical bandwidth: 46.4 GB/s for register communication across the CPE
  mesh, 32 GB/s for DMA between main memory and LDM.
* Nodes carry one SW26010 with 32 GB DDR3 shared by the 4 CGs.
* Network: two-level fat tree; 256 nodes form a *supernode* on a customised
  interconnection board; supernodes connect through a central routing server.
  Bidirectional peak bandwidth between processors is 16 GB/s; intra-supernode
  communication is more efficient than inter-supernode.

The specs are frozen dataclasses so a machine description can be shared and
hashed safely; derived quantities are exposed as properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError

#: Bytes in one KiB / MiB / GiB, used throughout the machine model.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: One gigabyte per second expressed in bytes/second.
GB_PER_S = 1e9


@dataclass(frozen=True)
class CPESpec:
    """A single Computing Processing Element (CPE).

    The CPE is a simple in-order 64-bit RISC core whose only fast local
    storage is the user-managed LDM scratchpad.
    """

    clock_hz: float = 1.45e9
    ldm_bytes: int = 64 * KIB
    l1_icache_bytes: int = 16 * KIB
    #: Double-precision floating point operations per cycle.  Each CPE has a
    #: 256-bit vector unit: 4 lanes x (mul+add) = 8 flops/cycle.
    flops_per_cycle: float = 8.0

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of one CPE."""
        return self.clock_hz * self.flops_per_cycle


@dataclass(frozen=True)
class CGSpec:
    """A Core Group: one MPE plus an 8x8 mesh of CPEs.

    Register communication moves data along the 8 row and 8 column buses of
    the mesh; DMA moves data between main memory and the LDMs.
    """

    cpe: CPESpec = field(default_factory=CPESpec)
    mesh_rows: int = 8
    mesh_cols: int = 8
    #: Aggregate register-communication bandwidth across the mesh (bytes/s).
    register_bw: float = 46.4 * GB_PER_S
    #: Aggregate DMA bandwidth between main memory and the CG's LDMs.
    dma_bw: float = 32.0 * GB_PER_S
    #: Startup latency of one DMA transaction (seconds).
    dma_latency: float = 1.0e-6
    #: Latency of one register-communication hop (seconds).
    register_latency: float = 1.0e-8

    @property
    def n_cpes(self) -> int:
        """Number of CPEs in the mesh (64 on the SW26010)."""
        return self.mesh_rows * self.mesh_cols

    @property
    def total_ldm_bytes(self) -> int:
        """Aggregate LDM over all CPEs of the CG."""
        return self.n_cpes * self.cpe.ldm_bytes

    @property
    def peak_flops(self) -> float:
        """Peak FLOP/s of all CPEs in the CG combined."""
        return self.n_cpes * self.cpe.peak_flops


@dataclass(frozen=True)
class ProcessorSpec:
    """An SW26010 many-core processor: 4 CGs sharing DDR3 main memory."""

    cg: CGSpec = field(default_factory=CGSpec)
    n_cgs: int = 4
    main_memory_bytes: int = 32 * GIB

    @property
    def n_cpes(self) -> int:
        """CPEs across the whole chip (256 on the SW26010)."""
        return self.n_cgs * self.cg.n_cpes

    @property
    def total_ldm_bytes(self) -> int:
        return self.n_cgs * self.cg.total_ldm_bytes


@dataclass(frozen=True)
class NetworkSpec:
    """Two-level fat-tree interconnect of TaihuLight.

    256 nodes share a supernode board; supernodes are joined by a central
    routing stage.  Crossing the supernode boundary costs extra latency and
    delivers a fraction of the intra-supernode bandwidth.
    """

    nodes_per_supernode: int = 256
    #: Bidirectional peak MPI bandwidth between two processors (bytes/s).
    link_bw: float = 16.0 * GB_PER_S
    #: Effective bandwidth multiplier for traffic crossing supernodes.
    inter_supernode_bw_factor: float = 0.55
    #: Point-to-point message latency within a supernode (seconds).
    intra_latency: float = 1.0e-6
    #: Additional latency for crossing the central routing server.
    inter_latency: float = 3.0e-6

    def bandwidth(self, same_supernode: bool) -> float:
        """Effective link bandwidth for a message (bytes/s)."""
        if same_supernode:
            return self.link_bw
        return self.link_bw * self.inter_supernode_bw_factor

    def latency(self, same_supernode: bool) -> float:
        """One-way message latency (seconds)."""
        if same_supernode:
            return self.intra_latency
        return self.intra_latency + self.inter_latency


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: some number of single-processor nodes + network."""

    processor: ProcessorSpec = field(default_factory=ProcessorSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    n_nodes: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")

    @property
    def n_cgs(self) -> int:
        """Total core groups across the machine."""
        return self.n_nodes * self.processor.n_cgs

    @property
    def n_cpes(self) -> int:
        """Total CPEs across the machine."""
        return self.n_nodes * self.processor.n_cpes

    @property
    def n_supernodes(self) -> int:
        """Number of (possibly partially filled) supernodes."""
        per = self.network.nodes_per_supernode
        return (self.n_nodes + per - 1) // per

    @property
    def ldm_bytes_per_cpe(self) -> int:
        return self.processor.cg.cpe.ldm_bytes

    @property
    def total_ldm_bytes(self) -> int:
        return self.n_nodes * self.processor.total_ldm_bytes

    @property
    def total_main_memory_bytes(self) -> int:
        return self.n_nodes * self.processor.main_memory_bytes

    @property
    def peak_flops(self) -> float:
        return self.n_nodes * self.processor.n_cgs * self.processor.cg.peak_flops

    def with_nodes(self, n_nodes: int) -> "MachineSpec":
        """Return a copy of this spec with a different node count."""
        return replace(self, n_nodes=n_nodes)


def sunway_spec(n_nodes: int = 1) -> MachineSpec:
    """The Sunway TaihuLight configuration used throughout the paper.

    Parameters
    ----------
    n_nodes:
        Number of SW26010 nodes.  The paper's experiments use 1 (Level 1),
        up to 256 (Level 2), and up to 4,096 (Level 3).
    """
    return MachineSpec(n_nodes=n_nodes)


def toy_spec(n_nodes: int = 1, cgs_per_node: int = 2, mesh: int = 2,
             ldm_bytes: int = 8 * KIB) -> MachineSpec:
    """A miniature machine for tests: few CGs, tiny meshes, small LDM.

    Keeping the same *structure* (CPE mesh, CGs, supernodes) at a fraction of
    the size lets the execute backend run the full partitioned algorithms on
    a laptop while still exercising every code path of the Sunway model.
    """
    cpe = CPESpec(ldm_bytes=ldm_bytes)
    cg = CGSpec(cpe=cpe, mesh_rows=mesh, mesh_cols=mesh)
    proc = ProcessorSpec(cg=cg, n_cgs=cgs_per_node, main_memory_bytes=GIB)
    net = NetworkSpec(nodes_per_supernode=4)
    return MachineSpec(processor=proc, network=net, n_nodes=n_nodes)


#: Named presets matching the paper's three experimental setups (section IV.B).
PRESETS = {
    "sunway-1": sunway_spec(1),        # Level 1 experiments: one SW26010
    "sunway-4": sunway_spec(4),
    "sunway-128": sunway_spec(128),    # comparison figures 7-9
    "sunway-256": sunway_spec(256),    # Level 2 experiments
    "sunway-400": sunway_spec(400),    # land-cover application (section IV.D)
    "sunway-4096": sunway_spec(4096),  # Level 3 experiments
}


def preset(name: str) -> MachineSpec:
    """Look up a named machine preset; raise ConfigurationError if unknown."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigurationError(
            f"unknown machine preset {name!r}; known presets: {known}"
        ) from None
