"""Text rendering of the machine hierarchy and partition layouts.

Backs the reproduction of the paper's two architecture diagrams: Figure 1
(the SW26010 processor) drawn from the live spec objects, and Figure 2
(the three-level partition) drawn from an actual Level-3 plan — so the
diagrams cannot drift from the implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import ConfigurationError
from .machine import Machine
from .specs import MachineSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.partition import Level3Plan


def render_processor(spec: MachineSpec) -> str:
    """ASCII rendering of one processor (the paper's Figure 1)."""
    cg = spec.processor.cg
    n_cgs = spec.processor.n_cgs
    mesh = f"{cg.mesh_rows}x{cg.mesh_cols}"
    ldm_kb = cg.cpe.ldm_bytes // 1024
    mem_gb = spec.processor.main_memory_bytes / 2**30

    content = [
        f"CG: MPE + {mesh} CPE mesh",
        f" {cg.n_cpes} CPEs x {ldm_kb} KB LDM",
        f" reg comm {cg.register_bw / 1e9:.1f} GB/s",
        f" DMA      {cg.dma_bw / 1e9:.1f} GB/s",
    ]
    inner = max(len(c) for c in content) + 2
    cg_box = [f"| {c.ljust(inner)} |" for c in content]
    width = len(cg_box[0])
    top = "+" + "-" * (width - 2) + "+"
    lines: List[str] = [
        f"SW26010 processor: {n_cgs} core groups, "
        f"{spec.processor.n_cpes} CPEs total",
        "",
    ]
    # Two columns of CG boxes (4 CGs on the real chip).
    per_row = 2
    for row_start in range(0, n_cgs, per_row):
        row_cgs = min(per_row, n_cgs - row_start)
        lines.append("  ".join([top] * row_cgs))
        for box_line in cg_box:
            lines.append("  ".join([box_line] * row_cgs))
        lines.append("  ".join([top] * row_cgs))
    lines.append(f"shared DDR3 main memory: {mem_gb:.0f} GB")
    return "\n".join(lines)


def render_machine(spec: MachineSpec) -> str:
    """One-paragraph summary of the full machine."""
    per = spec.network.nodes_per_supernode
    return "\n".join([
        f"machine: {spec.n_nodes} node(s), {spec.n_cgs} core groups, "
        f"{spec.n_cpes:,} CPEs",
        f"supernodes: {spec.n_supernodes} x up to {per} nodes "
        f"(two-level fat tree, {spec.network.link_bw / 1e9:.0f} GB/s links, "
        f"x{spec.network.inter_supernode_bw_factor:.2f} across supernodes)",
        f"aggregate LDM {spec.total_ldm_bytes / 2**20:.0f} MiB, "
        f"main memory {spec.total_main_memory_bytes / 2**30:.0f} GiB, "
        f"peak {spec.peak_flops / 1e12:.2f} TFLOP/s",
    ])


def render_level3_partition(plan: "Level3Plan", machine: Machine,
                            max_groups: int = 4,
                            max_members: int = 4) -> str:
    """Diagram of an nkd partition (the paper's Figure 2), from a real plan.

    One block per CG group showing its sample block, each member CG's
    centroid slice, and the per-CPE dimension slicing; elided groups/members
    are summarised, never silently dropped.
    """
    if max_groups < 1 or max_members < 1:
        raise ConfigurationError("max_groups and max_members must be >= 1")
    lines: List[str] = [
        f"nkd partition of n={plan.n:,}, k={plan.k:,}, d={plan.d:,} "
        f"over {machine.n_cgs} CGs",
        f"m'group={plan.mprime_group} CGs per group, "
        f"{plan.n_groups} CG group(s); dims split {len(plan.dim_slices)} "
        f"ways per CG",
        "",
    ]
    shown_groups = min(plan.n_groups, max_groups)
    for g in range(shown_groups):
        lo, hi = plan.sample_blocks[g]
        members = plan.cg_groups[g]
        lines.append(f"CG group {g}: samples [{lo:,}, {hi:,})  "
                     f"({hi - lo:,} samples)")
        shown_members = min(len(members), max_members)
        for j in range(shown_members):
            k_lo, k_hi = plan.centroid_slices[j]
            node = machine.node_of_cg(members[j])
            d_first = plan.dim_slices[0]
            d_last = plan.dim_slices[-1]
            lines.append(
                f"  CG {members[j]:>4d} (node {node:>3d}): centroids "
                f"[{k_lo:,}, {k_hi:,})  dims/CPE "
                f"[{d_first[0]},{d_first[1]}) ... "
                f"[{d_last[0]},{d_last[1]})"
            )
        if len(members) > shown_members:
            lines.append(f"  ... {len(members) - shown_members} more "
                         f"member CG(s)")
        lines.append("")
    if plan.n_groups > shown_groups:
        lines.append(f"... {plan.n_groups - shown_groups} more CG group(s), "
                     f"same structure")
    return "\n".join(lines)
