#!/usr/bin/env python3
"""Model selection: choosing k, validating stability, trying baselines.

A realistic downstream workflow on top of the public API:

1. sweep k with the elbow rule and with silhouette,
2. check the chosen clustering is stable under bootstrap resampling,
3. compare exact accelerations and streaming approximations on the final k.

Run: python examples/model_selection.py
"""

import numpy as np

from repro.analysis import bootstrap_stability, inertia_sweep, silhouette_sweep
from repro.baselines import hamerly, minibatch, streaming_kmeans
from repro.core import init_centroids, lloyd
from repro.data import gaussian_blobs
from repro.machine.machine import toy_machine
from repro.reporting import format_table


def main() -> None:
    # Data with 6 real clusters; pretend we don't know that.
    X, _ = gaussian_blobs(n=2500, k=6, d=12, spread=0.04, seed=42)
    machine = toy_machine(n_nodes=1, cgs_per_node=2, mesh=4,
                          ldm_bytes=64 * 1024)

    ks = [2, 3, 4, 5, 6, 7, 8, 10]
    elbow = inertia_sweep(X, ks, machine=machine, n_init=3, seed=42)
    sil = silhouette_sweep(X, ks[1:], machine=machine, seed=42)
    print(format_table(
        ["k", "inertia", "silhouette"],
        [[k,
          f"{elbow.scores[i]:.4f}",
          f"{sil.scores[i - 1]:.3f}" if k >= ks[1] else "-"]
         for i, k in enumerate(ks)],
        title="choosing k",
    ))
    print(f"\nelbow suggests k = {elbow.best_k}; "
          f"silhouette suggests k = {sil.best_k}")

    k = sil.best_k
    report = bootstrap_stability(X, k, machine=machine, n_rounds=8, seed=1)
    print(f"bootstrap stability at k={k}: ARI {report.mean:.3f} "
          f"± {report.std:.3f} ({'stable' if report.stable else 'UNSTABLE'})")

    C0 = init_centroids(X, k, method="kmeans++", seed=42)
    ref = lloyd(X, C0, max_iter=60)
    ham, stats = hamerly(X, C0, max_iter=60)
    assert np.array_equal(ham.assignments, ref.assignments)
    mb = minibatch(X, C0, batch_size=256, max_iter=500, seed=42)
    stream, sstats = streaming_kmeans(X, k, chunk_size=500, seed=42)

    print("\n" + format_table(
        ["algorithm", "inertia", "notes"],
        [
            ["Lloyd", f"{ref.inertia:.4f}", f"{ref.n_iter} iterations"],
            ["Hamerly (exact)", f"{ham.inertia:.4f}",
             f"{stats.fraction_skipped * 100:.0f}% distance work skipped"],
            ["mini-batch", f"{mb.inertia:.4f}",
             f"{mb.n_iter} batches of 256"],
            ["streaming D&C", f"{stream.inertia:.4f}",
             f"peak working set {sstats.peak_resident_samples} samples"],
        ],
        title=f"algorithms at k={k}",
    ))


if __name__ == "__main__":
    main()
