#!/usr/bin/env python3
"""Land-cover classification — the paper's Figure 10 application.

Clusters a (synthetic) satellite tile into 7 land classes with the Level-3
k-means pipeline: patch features -> hierarchical k-means -> per-patch class
map -> accuracy against dense ground truth.  Also prices the paper's
full-scale configuration (n=5,838,480 patches, k=7, d=4096 on 400 SW26010
processors) with the performance model.

Run: python examples/land_cover_classification.py
"""

from repro.apps import classify_land_cover
from repro.data import CLASS_NAMES


def main() -> None:
    result = classify_land_cover(
        height=256, width=256,    # tile size in pixels
        patch=4,                  # 4x4 patches -> d = 48 features
        n_classes=7,
        seed=2018,
        predict_paper_scale=True,
    )

    print("land-cover classification (synthetic DeepGlobe-like tile)")
    print(f"patch accuracy vs ground truth: {result.accuracy * 100:.1f}%\n")

    print("class shares:")
    for name, share in result.class_shares().items():
        bar = "#" * int(share * 50)
        print(f"  {name:12s} {share * 100:5.1f}%  {bar}")

    print("\npredicted class map (coarse ASCII):")
    print(result.render_ascii(max_width=64))

    if result.paper_scale is not None:
        pred = result.paper_scale
        print(f"\npaper-scale configuration "
              f"(n=5,838,480, k={len(CLASS_NAMES)}, d=4096, 400 nodes):")
        print(f"  modelled one-iteration time: {pred.total:.4f} s")
        print(f"  m'group={pred.mprime_group}, CG groups={pred.n_groups}")


if __name__ == "__main__":
    main()
