#!/usr/bin/env python3
"""Baseline comparison: Lloyd vs bound-based exact accelerations + metrics.

Runs the serial Lloyd baseline, Hamerly's algorithm, Yinyang k-means (the
Table III comparator algorithm, implemented in this repo), and the
host-parallel Lloyd on the same workload; verifies they produce the same
clustering; scores it with the quality metrics; and prints the simulated
machine's time trace for the equivalent Level-3 run.

Run: python examples/baseline_comparison.py
"""

import time

import numpy as np

from repro import toy_machine
from repro.baselines import hamerly, yinyang
from repro.core import init_centroids, lloyd, run_level3
from repro.core.metrics import (
    adjusted_rand_index,
    normalized_mutual_info,
    purity,
    silhouette_score,
)
from repro.data import gaussian_blobs
from repro.reporting import format_table, render_trace
from repro.runtime.host import lloyd_parallel


def main() -> None:
    X, truth = gaussian_blobs(n=6000, k=24, d=16, seed=11)
    C0 = init_centroids(X, 24, method="kmeans++", seed=11)

    rows = []
    reference = None
    for name, runner in [
        ("Lloyd (serial)", lambda: (lloyd(X, C0, max_iter=60), None)),
        ("Hamerly", lambda: hamerly(X, C0, max_iter=60)),
        ("Yinyang", lambda: yinyang(X, C0, max_iter=60)),
        ("Lloyd (host-parallel)",
         lambda: (lloyd_parallel(X, C0, max_iter=60, n_workers=2), None)),
    ]:
        t0 = time.perf_counter()
        result, stats = runner()
        elapsed = time.perf_counter() - t0
        if reference is None:
            reference = result
        else:
            assert np.array_equal(result.assignments,
                                  reference.assignments), name
        skipped = (f"{stats.fraction_skipped * 100:.0f}%"
                   if stats is not None else "-")
        rows.append([name, result.n_iter, f"{result.inertia:.5f}",
                     f"{elapsed * 1e3:.0f} ms", skipped])
    print(format_table(
        ["algorithm", "iters", "inertia", "host wall-clock",
         "distance work skipped"],
        rows, title="exact k-means variants (identical trajectories)"))

    a = reference.assignments
    print("\nclustering quality vs ground truth:")
    print(f"  purity     {purity(a, truth):.3f}")
    print(f"  NMI        {normalized_mutual_info(a, truth):.3f}")
    print(f"  ARI        {adjusted_rand_index(a, truth):.3f}")
    print(f"  silhouette {silhouette_score(X, a, sample_size=1000):.3f}")

    # The same workload on the simulated machine, with its time trace.
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    sim = run_level3(X, C0, machine, max_iter=60)
    assert np.array_equal(sim.assignments, reference.assignments)
    print(f"\nsimulated Level-3 run: "
          f"{sim.mean_iteration_seconds():.6f} s/iter (modelled)\n")
    print(render_trace(sim.ledger, top=6))


if __name__ == "__main__":
    main()
