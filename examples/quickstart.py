#!/usr/bin/env python3
"""Quickstart: cluster a dataset with the hierarchical k-means library.

Demonstrates the 90%-use-case API:

1. build a simulated Sunway machine,
2. construct HierarchicalKMeans (the level is chosen automatically),
3. fit, inspect the result, and read the modelled one-iteration time.

Run: python examples/quickstart.py
"""

from repro import HierarchicalKMeans, sunway_machine
from repro.data import gaussian_blobs


def main() -> None:
    # A synthetic workload: 10,000 samples, 16 true clusters, 32 dims.
    X, truth = gaussian_blobs(n=10_000, k=16, d=32, seed=7)

    # One SW26010 node: 4 core groups x (1 MPE + 64 CPEs with 64 KB LDM).
    machine = sunway_machine(n_nodes=1)

    model = HierarchicalKMeans(
        n_clusters=16,
        machine=machine,
        level="auto",        # picks the cheapest feasible partition level
        init="kmeans++",
        seed=7,
        max_iter=100,
        tol=0.0,             # the paper's stop rule: run until C is fixed
    )
    result = model.fit(X)

    print(result.summary())
    print(f"selected partition level : {model.selected_level_}")
    print(f"iterations to convergence: {result.n_iter}")
    print(f"final objective O(C)     : {result.inertia:.6f}")
    print(f"modelled s/iteration     : {result.mean_iteration_seconds():.6f}")

    print("\nwhere the modelled time went:")
    for category, seconds in result.ledger.total_by_category().items():
        print(f"  {category:8s} {seconds:.6f} s")

    # Assign new data with the fitted centroids.
    new_points = X[:5] * 1.001
    print(f"\npredictions for 5 perturbed samples: {model.predict(new_points)}")


if __name__ == "__main__":
    main()
