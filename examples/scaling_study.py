#!/usr/bin/env python3
"""Scaling study: regenerate the paper's comparison figures (7, 8, 9).

Sweeps d, k, and node count with the performance model at full paper scale
(ILSVRC2012 shapes, up to 256 nodes here) and prints the per-level series,
sparkline trends, crossovers, and the headline prediction.

Run: python examples/scaling_study.py
"""

from repro.data import TABLE_II
from repro.machine.specs import sunway_spec
from repro.perfmodel import PerformanceModel, sweep
from repro.reporting import series_sparklines, series_table

N = TABLE_II["ilsvrc2012"].n


def study_dimensions() -> None:
    """Figure 7: vary d at k=2000 on 128 nodes."""
    ds = [512, 1024, 2048, 3072, 4096, 4608, 6144, 8192]
    out = sweep("d", ds, levels=[2, 3], n=N, k=2000, d=0, nodes=128)
    series = {"Level 2": out[2], "Level 3": out[3]}
    print(series_table(series, "d",
                       title="Varying d (k=2000, 128 nodes) — Figure 7"))
    cross = out[3].crossover_with(out[2])
    print(f"\nLevel 3 takes over at d = {cross:g} "
          f"(paper reports 2,560); Level 2 is infeasible past d = 4,096")
    print(series_sparklines(series), "\n")


def study_centroids() -> None:
    """Figure 8: vary k at d=4096 on 128 nodes."""
    ks = [256, 1024, 4096, 16384, 65536, 131072]
    out = sweep("k", ks, levels=[2, 3], n=N, k=0, d=4096, nodes=128)
    series = {"Level 2": out[2], "Level 3": out[3]}
    print(series_table(series, "k",
                       title="Varying k (d=4096, 128 nodes) — Figure 8"))
    gap = out[2].y[-1] / out[3].y[-1]
    print(f"\nLevel 3 is {gap:.1f}x faster at k = {ks[-1]:,}\n")


def study_nodes() -> None:
    """Figure 9: vary the node count at k=2000, d=4096."""
    nodes = [2, 8, 32, 128, 256]
    out = sweep("nodes", nodes, levels=[2, 3], n=N, k=2000, d=4096, nodes=0)
    series = {"Level 2": out[2], "Level 3": out[3]}
    print(series_table(series, "nodes",
                       title="Varying nodes (k=2000, d=4096) — Figure 9"))
    print(f"\ngap: {out[2].y[0] / out[3].y[0]:.1f}x at {nodes[0]} nodes -> "
          f"{out[2].y[-1] / out[3].y[-1]:.1f}x at {nodes[-1]} nodes\n")


def headline() -> None:
    """The abstract's claim: <18 s/iter at k=2000, d=196,608, 4096 nodes."""
    model = PerformanceModel(sunway_spec(4096))
    pred = model.predict(3, N, 2000, 196_608)
    print(f"headline: {pred.total:.2f} s/iteration at k=2,000, d=196,608 "
          f"on 4,096 nodes (paper: < 18 s)")
    for phase, seconds in pred.phases.items():
        print(f"  {phase:28s} {seconds:.4f} s")


def main() -> None:
    study_dimensions()
    study_centroids()
    study_nodes()
    headline()


if __name__ == "__main__":
    main()
