#!/usr/bin/env python3
"""Reproduce the paper's entire evaluation section in one run.

Regenerates every table and figure (plus the repo's extension experiments),
prints each report with its shape-check verdicts, and persists everything —
report text, check JSON, series CSV — under ``--out`` (default
``./paper_outputs``).

Run: python examples/reproduce_paper.py [--out DIR] [--skip-extras]
"""

import argparse
import os
import sys
import time

from repro.experiments import EXPERIMENTS, EXTRA_EXPERIMENTS, run_experiment
from repro.io import save_experiment


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="paper_outputs",
                        help="directory for persisted reports/CSV")
    parser.add_argument("--skip-extras", action="store_true",
                        help="only the paper's tables and figures")
    args = parser.parse_args()

    ids = list(EXPERIMENTS)
    if not args.skip_extras:
        ids += list(EXTRA_EXPERIMENTS)

    os.makedirs(args.out, exist_ok=True)
    all_ok = True
    for exp_id in ids:
        t0 = time.perf_counter()
        output = run_experiment(exp_id)
        elapsed = time.perf_counter() - t0
        save_experiment(output, args.out)

        n_ok = sum(output.checks.values())
        verdict = "all checks pass" if output.all_checks_pass else "FAILED"
        print(f"[{exp_id:>18s}] {n_ok}/{len(output.checks)} "
              f"({verdict}, {elapsed:.1f}s) — {output.title}")
        for name, ok in output.checks.items():
            if not ok:
                all_ok = False
                print(f"     FAILED: {name}")

    print(f"\nreports written to {os.path.abspath(args.out)}/")
    if all_ok:
        print("every qualitative claim of the paper's evaluation "
              "reproduces on this build.")
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
