#!/usr/bin/env python3
"""Capability planner: which partition level fits your workload?

Feeds a grid of (k, d) workloads through the feasibility constraints and
the level auto-selector, printing the level map — a practical rendering of
the paper's Table I capability claims and section III.D flexibility story.

Run: python examples/capability_planner.py
"""

import numpy as np

from repro import PartitionError, select_level, toy_machine
from repro.core import (
    level1_feasibility,
    level3_feasibility,
    min_mprime_group_level3,
)
from repro.machine.specs import sunway_spec
from repro.reporting import format_table


def level_map() -> None:
    """Which level the auto-selector picks across a (k, d) grid."""
    machine = toy_machine(n_nodes=4, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    ks = [4, 32, 128, 512]
    ds = [8, 64, 512, 2048]
    rows = []
    for k in ks:
        cells = [f"k={k}"]
        for d in ds:
            try:
                level = select_level(machine, n=10_000, k=k, d=d)
                cells.append(f"L{level}")
            except PartitionError:
                cells.append("-")
        rows.append(cells)
    print(format_table([""] + [f"d={d}" for d in ds], rows,
                       title="Auto-selected level per (k, d) "
                             "(toy machine, 16 KB LDM)"))
    print()


def paper_extremes() -> None:
    """Verify the paper's headline capability envelope on 4,096 nodes."""
    spec = sunway_spec(4096)
    cases = [
        ("Figure 6 centroid extreme", 160_000, 3_072),
        ("Figure 5/6 dimension extreme", 2_000, 196_608),
        ("Kumar et al. envelope (Jaguar)", 1_000, 30),
        ("Bender et al. envelope (Trinity)", 18, 140_256),
    ]
    rows = []
    for name, k, d in cases:
        l1 = level1_feasibility(k, d, spec, dtype=np.float32).feasible
        mprime = min_mprime_group_level3(k, d, spec, dtype=np.float32)
        l3 = (mprime is not None and
              level3_feasibility(k, d, mprime, spec,
                                 dtype=np.float32).feasible)
        rows.append([name, f"{k:,}", f"{d:,}",
                     "yes" if l1 else "no",
                     f"yes (m'group={mprime})" if l3 else "no"])
    print(format_table(
        ["workload", "k", "d", "fits Level 1?", "fits Level 3?"], rows,
        title="Capability check on the 4,096-node machine (float32)"))


def main() -> None:
    level_map()
    paper_extremes()


if __name__ == "__main__":
    main()
