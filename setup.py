"""Legacy setup shim so `pip install -e .` works with older setuptools."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Large-Scale Hierarchical k-means for "
        "Heterogeneous Many-Core Supercomputers' (SC 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
