"""Host-chaos harness: supervised runs survive, unsupervised runs fail.

The tentpole claim of the host robustness layer, measured end to end with
seeded chaos injected at the engine seam (block-task exceptions, slow
blocks, NaN-poisoned partials):

* **lloyd** — a supervised run (bounded retries with backoff) under
  exception + slow-block chaos finishes **bit-identical** to the
  fault-free serial baseline, on both the serial and thread engines; the
  same chaos with retries disabled kills the run;
* **executor** — levels 1-3 under NaN-corruption chaos survive via the
  numerical guard + checkpoint rollback (``recovery="replan"``),
  bit-identical to the clean baseline; under the default fail-fast
  recovery the guard turns the corruption into a loud
  ``NumericalFaultError`` instead of silently converging to garbage.

Every row records both halves (``supervised_identical`` and
``unsupervised_failed``) plus the host-event counts that prove the chaos
actually fired.  Run::

    PYTHONPATH=src python benchmarks/bench_chaos.py \
        [--quick] [--check] [--workers N] [--out BENCH_chaos.json]

``--check`` exits non-zero when any supervised run is not bit-identical,
any unsupervised run fails to fail, or no chaos fired at all.
"""

import argparse
import json
import os
import platform
import sys
import time
import warnings

import numpy as np

from repro.core.init import init_centroids
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import ChaosError, NumericalFaultError
from repro.machine.machine import toy_machine
from repro.runtime.chaos import ChaosInjector, parse_chaos_plan
from repro.runtime.engine import SerialEngine, TaskPolicy, ThreadEngine

# Exception + slow-block chaos: numerically invisible once retried, so a
# supervised run must land on the bit-identical fixed point.
LLOYD_CHAOS = "task_exception:p=0.15;slow_task:p=0.1,delay=0.002;seed=7"


def _event_counts(result):
    counts = {}
    for event in result.host_events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def _identical(a, b):
    return (bool(np.array_equal(a.centroids, b.centroids))
            and bool(np.array_equal(a.assignments, b.assignments))
            and a.inertia == b.inertia)


# ---------------------------------------------------------------------------
# lloyd sweep: exception/slow-block chaos, serial + thread engines
# ---------------------------------------------------------------------------

def _lloyd_sweep(shapes, workers, chunk_elements, max_iter):
    rows = []
    for (n, k, d, seed) in shapes:
        X, _ = gaussian_blobs(n=n, k=k, d=d, seed=seed)
        C0 = init_centroids(X, k, method="first")

        def run(engine):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return lloyd(X, C0, max_iter=max_iter,
                             chunk_elements=chunk_elements, engine=engine)

        def chaotic_engine(engine_workers, max_retries):
            injector = ChaosInjector(parse_chaos_plan(LLOYD_CHAOS))
            policy = TaskPolicy(max_retries=max_retries, backoff_s=0.0)
            if engine_workers > 1:
                return ThreadEngine(engine_workers, policy=policy,
                                    chaos=injector)
            return SerialEngine(policy=policy, chaos=injector)

        t0 = time.perf_counter()
        clean = run(SerialEngine())
        clean_seconds = time.perf_counter() - t0
        for engine_workers in (1, workers):
            t0 = time.perf_counter()
            survived = run(chaotic_engine(engine_workers, max_retries=3))
            supervised_seconds = time.perf_counter() - t0
            counts = _event_counts(survived)
            unsupervised_failed = False
            try:
                run(chaotic_engine(engine_workers, max_retries=0))
            except ChaosError:
                unsupervised_failed = True
            rows.append({
                "n": n, "k": k, "d": d, "engine_workers": engine_workers,
                "chaos": LLOYD_CHAOS,
                "supervised_identical": _identical(clean, survived),
                "unsupervised_failed": unsupervised_failed,
                "chaos_events": counts.get("chaos", 0),
                "task_retries": counts.get("task_retry", 0),
                "clean_seconds": clean_seconds,
                "supervised_seconds": supervised_seconds,
            })
            r = rows[-1]
            print(f"  lloyd n={n:6d} k={k:3d} d={d:2d} "
                  f"workers={engine_workers}: "
                  f"{r['chaos_events']:3d} chaos, "
                  f"{r['task_retries']:3d} retries  "
                  f"supervised "
                  f"{'ok' if r['supervised_identical'] else 'MISMATCH'}  "
                  f"unsupervised "
                  f"{'failed (good)' if unsupervised_failed else 'SURVIVED'}")
    return rows


# ---------------------------------------------------------------------------
# executor sweep: NaN corruption -> numerical guard -> rollback
# ---------------------------------------------------------------------------

def _executor_sweep(n, k, d, max_iter):
    X, _ = gaussian_blobs(n=n, k=k, d=d, seed=4)
    machine = toy_machine(n_nodes=2)
    rows = []
    for level in (1, 2, 3):
        def fit(engine=None, **kwargs):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return HierarchicalKMeans(
                    k, machine=machine, level=level, seed=11,
                    max_iter=max_iter, engine=engine, **kwargs).fit(X)

        def nan_engine():
            return SerialEngine(chaos=ChaosInjector(
                parse_chaos_plan("nan_result@2")))

        clean = fit()
        survived = fit(engine=nan_engine(), recovery="replan",
                       checkpoint_every=1)
        counts = _event_counts(survived)
        guard_fired = False
        try:
            fit(engine=nan_engine())  # default fail_fast recovery
        except NumericalFaultError:
            guard_fired = True
        rows.append({
            "level": level, "n": n, "k": k, "d": d,
            "chaos": "nan_result@2",
            "supervised_identical": _identical(clean, survived),
            "unsupervised_failed": guard_fired,
            "chaos_events": counts.get("chaos", 0),
            "rollbacks": counts.get("rollback", 0),
        })
        r = rows[-1]
        print(f"  executor level {level}: {r['rollbacks']} rollback(s)  "
              f"supervised "
              f"{'ok' if r['supervised_identical'] else 'MISMATCH'}  "
              f"fail-fast guard "
              f"{'raised (good)' if guard_fired else 'SILENT'}")
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="host-chaos harness: supervised runs survive "
                    "bit-identically, unsupervised runs fail")
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless every supervised run is "
                             "bit-identical, every unsupervised run "
                             "fails, and chaos actually fired")
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 1),
                        help="thread-engine width (default: cpu count, "
                             "min 2)")
    parser.add_argument("--out", default="BENCH_chaos.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        shapes = [(400, 8, 6, 3)]
        executor_shape = (300, 3, 5)
        chunk_elements, max_iter = 4096, 30
    else:
        shapes = [(400, 8, 6, 3), (20_000, 16, 8, 3)]
        executor_shape = (20_000, 8, 16)
        chunk_elements, max_iter = 16_384, 40

    print(f"lloyd chaos sweep ({args.workers} workers, "
          f"cpu_count={os.cpu_count()}):")
    lloyd_rows = _lloyd_sweep(shapes, args.workers, chunk_elements, max_iter)
    print("executor NaN-rollback sweep:")
    executor_rows = _executor_sweep(*executor_shape, max_iter=max_iter)

    payload = {
        "benchmark": "chaos",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "lloyd": lloyd_rows,
        "executor": executor_rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        rows = lloyd_rows + executor_rows
        broken = [r for r in rows if not r["supervised_identical"]]
        if broken:
            print(f"CHECK FAILED: supervised run diverged in "
                  f"{len(broken)} row(s)")
            return 1
        tame = [r for r in rows if not r["unsupervised_failed"]]
        if tame:
            print(f"CHECK FAILED: unsupervised run survived in "
                  f"{len(tame)} row(s)")
            return 1
        if not any(r["chaos_events"] for r in rows):
            print("CHECK FAILED: no chaos fired anywhere")
            return 1
        print("CHECK OK: supervised bit-identical, unsupervised failed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
