"""Bench: Figure 7 — Level 2 vs Level 3 over d (the crossover figure).

The model backend regenerates the figure; the execute backend demonstrates
the same phenomenon at reduced scale: Level 2 refuses configurations whose
sample no longer fits one LDM while Level 3 keeps running.
"""

import numpy as np
import pytest
from conftest import assert_all_checks

from repro.core.level2 import run_level2
from repro.core.level3 import run_level3
from repro.errors import PartitionError
from repro.experiments import figure7
from repro.machine.machine import toy_machine


def test_figure7_model(benchmark):
    out = benchmark(figure7.run)
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure7_execute_level2_memory_wall(benchmark):
    """At d beyond the toy LDM, Level 2 fails to plan; Level 3 still runs."""
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=4 * 1024)  # 512 f64 elements per CPE
    # d=256: 3d+1 = 769 elements > 512 -> Level 2's C2 is violated.
    from repro.data.synthetic import gaussian_blobs
    X, _ = gaussian_blobs(n=600, k=8, d=256, seed=1)
    C0 = np.array(X[:8], dtype=np.float64)

    with pytest.raises(PartitionError):
        run_level2(X, C0, machine, max_iter=1)

    def run():
        return run_level3(X, C0, machine, max_iter=2)

    result = benchmark(run)
    assert result.n_iter >= 1
