"""Bench: Figure 8 — Level 2 vs Level 3 over k at fixed d=4096."""

import numpy as np
from conftest import assert_all_checks

from repro.core.level2 import run_level2
from repro.core.level3 import run_level3
from repro.experiments import figure8
from repro.machine.machine import toy_machine


def test_figure8_model(benchmark):
    out = benchmark(figure8.run)
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure8_execute_levels_at_scaleddown_k(benchmark):
    """Both levels run the same reduced workload; modelled L3 <= L2 when the
    per-CPE centroid slices overflow at Level 2's granularity."""
    machine = toy_machine(n_nodes=4, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    from repro.data.synthetic import gaussian_blobs
    X, _ = gaussian_blobs(n=1500, k=48, d=96, seed=8)
    C0 = np.array(X[:48], dtype=np.float64)

    def run():
        r2 = run_level2(X, C0, machine, max_iter=2)
        r3 = run_level3(X, C0, machine, max_iter=2)
        return r2.mean_iteration_seconds(), r3.mean_iteration_seconds()

    t2, t3 = benchmark(run)
    assert t2 > 0 and t3 > 0
