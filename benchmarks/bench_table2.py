"""Bench: regenerate Table II (benchmark datasets + stand-in generators)."""

from conftest import assert_all_checks

from repro.experiments import table2


def test_table2_datasets(benchmark):
    out = benchmark(table2.run)
    assert_all_checks(out)
    print("\n" + out.text)
