"""Ablation benches for the design choices DESIGN.md calls out.

1. Collective algorithm for the inter-CG allreduce (ring vs tree vs
   recursive doubling) on the execute backend.
2. Supernode-aware vs strided CG-group placement (paper section III.C).
3. Distance kernel: direct sum-of-squared-diffs vs expanded GEMM form.
4. Element type float32 vs float64 in the performance model (the LDM
   element budget halves, shifting Level 2's memory wall).
"""

import math

import numpy as np
import pytest

from repro.core._common import squared_distances, squared_distances_expanded
from repro.core.level3 import run_level3
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine
from repro.machine.specs import sunway_spec
from repro.perfmodel.model import PerformanceModel
from repro.perfmodel.params import ModelParams


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=1200, k=16, d=64, seed=21)
    C0 = np.array(X[:16], dtype=np.float64)
    return X, C0


@pytest.mark.parametrize("algorithm", ["ring", "tree", "recursive-doubling"])
def test_collective_algorithm(benchmark, workload, algorithm):
    """Same run, different inter-CG collective; modelled time must differ
    only in the network phase (results identical)."""
    X, C0 = workload
    machine = toy_machine(n_nodes=4, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)

    def run():
        return run_level3(X, C0, machine, max_iter=2,
                          collective_algorithm=algorithm)

    result = benchmark(run)
    assert result.n_iter >= 1
    assert result.ledger.total_by_category()["network"] > 0


@pytest.mark.parametrize("supernode_aware", [True, False])
def test_placement(benchmark, workload, supernode_aware):
    """Supernode-aware CG-group placement vs strided placement.

    On the toy machine (4 nodes/supernode) strided groups span supernodes
    and pay the derated bandwidth; results stay identical.
    """
    X, C0 = workload
    machine = toy_machine(n_nodes=8, cgs_per_node=2, mesh=4,
                          ldm_bytes=2 * 1024)

    def run():
        return run_level3(X, C0, machine, max_iter=2,
                          supernode_aware=supernode_aware)

    result = benchmark(run)
    assert result.n_iter >= 1


def test_placement_supernode_aware_is_faster(workload):
    """The paper's placement rule: in-supernode groups beat strided ones."""
    X, C0 = workload
    machine = toy_machine(n_nodes=8, cgs_per_node=2, mesh=4,
                          ldm_bytes=2 * 1024)
    aware = run_level3(X, C0, machine, max_iter=3, supernode_aware=True)
    strided = run_level3(X, C0, machine, max_iter=3, supernode_aware=False)
    np.testing.assert_array_equal(aware.assignments, strided.assignments)
    assert (aware.mean_iteration_seconds()
            <= strided.mean_iteration_seconds())


@pytest.mark.parametrize("kernel", ["direct", "expanded"])
def test_distance_kernel(benchmark, kernel):
    """Direct vs expanded distance formulation (same argmin, different cost)."""
    rng = np.random.default_rng(5)
    X = rng.normal(size=(4000, 128))
    C = rng.normal(size=(96, 128))
    fn = squared_distances if kernel == "direct" else squared_distances_expanded

    d2 = benchmark(fn, X, C)
    reference = np.argmin(squared_distances(X, C), axis=1)
    assert np.array_equal(np.argmin(d2, axis=1), reference)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_dtype_model(benchmark, dtype):
    """float64 halves the LDM element budget: Level 2's d-wall moves from
    4096 to 2048 on the model backend."""
    params = ModelParams(dtype=np.dtype(dtype))
    model = PerformanceModel(sunway_spec(128), params)

    def run():
        return {d: model.predict(2, 1_265_723, 2000, d).total
                for d in (1024, 2048, 4096)}

    times = benchmark(run)
    if np.dtype(dtype) == np.float32:
        assert math.isfinite(times[4096])
    else:
        assert math.isfinite(times[2048])
        assert math.isinf(times[4096])


@pytest.mark.parametrize("overlap", [False, True])
def test_dma_compute_overlap(benchmark, workload, overlap):
    """Double-buffered DMA: overlap hides the shorter of stream/compute."""
    X, C0 = workload
    machine = toy_machine(n_nodes=4, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)

    def run():
        return run_level3(X, C0, machine, max_iter=2, overlap_dma=overlap)

    result = benchmark(run)
    assert result.n_iter >= 1


def test_overlap_reduces_modelled_time(workload):
    X, C0 = workload
    machine = toy_machine(n_nodes=4, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    plain = run_level3(X, C0, machine, max_iter=2)
    overlapped = run_level3(X, C0, machine, max_iter=2, overlap_dma=True)
    assert (overlapped.mean_iteration_seconds()
            < plain.mean_iteration_seconds())


@pytest.mark.parametrize("streaming", [False, True])
def test_streaming_mode(benchmark, streaming):
    """Resident vs streaming Level-2 plans on a resident-feasible workload."""
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=2,
                          ldm_bytes=8 * 1024)
    X, _ = gaussian_blobs(n=600, k=8, d=200, seed=5)
    C0 = np.array(X[:8], dtype=np.float64)
    from repro.core.level2 import run_level2

    def run():
        return run_level2(X, C0, machine, max_iter=2, streaming=streaming)

    result = benchmark(run)
    assert result.n_iter >= 1
