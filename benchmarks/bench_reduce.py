"""Benchmarks of the reduction seam: serial fold vs tree combine.

Two sweeps, standalone (no pytest-benchmark dependency):

* **merge** — raw ``reduce_partials`` wall-clock over synthetic
  ``(sums, counts)`` block partials at large ``k*d`` (where the serial
  fold is the Amdahl term a pooled engine exposes): the inline serial
  fold vs the tree topology on the thread engine, asserting tree/serial
  numerical parity and tree bit-invariance across engines and worker
  counts;
* **fit** — full ledgered executor fits (toy machine, levels 1-3) with
  ``reduce="serial"`` vs ``reduce="tree"``, asserting bit-identical
  centroids/assignments *between the two topologies' serial/thread
  engines* and identical modelled ledger seconds between topologies
  (combines charge nothing; the modelled reduction cost is topology-
  independent by design).

Run::

    PYTHONPATH=src python benchmarks/bench_reduce.py \
        [--quick] [--check] [--workers N] [--out BENCH_reduce.json]

``--check`` exits non-zero on any parity mismatch.  Tree *speedup* is
recorded but not gated: it is a property of the host (``cpu_count`` goes
into the JSON), and a single-core host cannot show one by construction.
"""

import argparse
import json
import os
import platform
import sys
import time
import warnings

import numpy as np

from repro.core.kmeans import HierarchicalKMeans
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine
from repro.runtime.engine import SerialEngine, ThreadEngine


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# merge sweep: raw reduce_partials, serial fold vs pooled tree
# ---------------------------------------------------------------------------

def _merge_sweep(shapes, workers, repeats):
    rows = []
    for (blocks, k, d) in shapes:
        rng = np.random.default_rng(blocks * 31 + k)
        partials = [
            (rng.normal(size=(k, d)), rng.integers(0, 50, size=k))
            for _ in range(blocks)
        ]
        serial_engine = SerialEngine()
        thread_engine = ThreadEngine(workers)

        serial = serial_engine.reduce_partials(partials, topology="serial")
        tree_a = serial_engine.reduce_partials(partials, topology="tree")
        tree_b = thread_engine.reduce_partials(partials, topology="tree")
        identical = (
            # Tree is bit-invariant across engines (fixed merge schedule).
            tree_a[0].tobytes() == tree_b[0].tobytes()
            and tree_a[1].tobytes() == tree_b[1].tobytes()
            # Tree agrees with the fold numerically; counts are int64,
            # so they must match exactly under any association.
            and bool(np.allclose(tree_a[0], serial[0], rtol=1e-12))
            and bool(np.array_equal(tree_a[1], serial[1])))
        t_serial = _best_of(
            lambda: serial_engine.reduce_partials(partials,
                                                  topology="serial"),
            repeats)
        t_tree = _best_of(
            lambda: thread_engine.reduce_partials(partials, topology="tree"),
            repeats)
        rows.append({
            "blocks": blocks, "k": k, "d": d, "workers": workers,
            "serial_seconds": t_serial,
            "tree_seconds": t_tree,
            "speedup": t_serial / t_tree,
            "identical_results": identical,
        })
        print(f"  merge blocks={blocks:3d} k={k:5d} d={d:4d}: "
              f"serial {t_serial:8.4f}s  tree({workers}) {t_tree:8.4f}s  "
              f"{t_serial / t_tree:5.2f}x  "
              f"{'ok' if identical else 'MISMATCH'}")
    return rows


# ---------------------------------------------------------------------------
# fit sweep: ledgered executors, serial vs tree reduction
# ---------------------------------------------------------------------------

def _fit_sweep(workers, max_iter):
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    X, _ = gaussian_blobs(n=20_000, k=16, d=32, seed=7)
    rows = []
    for level in (1, 2, 3):
        def fit(engine, reduce):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return HierarchicalKMeans(
                    16, machine=machine, level=level, init="first",
                    max_iter=max_iter, engine=engine, reduce=reduce,
                    workers=workers if engine == "thread" else None).fit(X)

        serial = fit("serial", "serial")
        tree = fit("serial", "tree")
        tree_threaded = fit("thread", "tree")
        identical = (
            # Tree is engine-independent...
            bool(np.array_equal(tree.centroids, tree_threaded.centroids))
            and bool(np.array_equal(tree.assignments,
                                    tree_threaded.assignments))
            and tree.ledger.records == tree_threaded.ledger.records
            # ...agrees with the fold numerically...
            and bool(np.allclose(serial.centroids, tree.centroids,
                                 rtol=1e-9))
            # ...and the modelled seconds are topology-independent
            # (combines charge nothing at the reduce seam).
            and serial.ledger.records == tree.ledger.records)
        rows.append({
            "level": level, "n": X.shape[0], "k": 16, "d": 32,
            "workers": workers,
            "identical_results": identical,
            "modelled_seconds": serial.ledger.total(),
        })
        print(f"  executor level {level}: serial-fold vs tree "
              f"{'parity ok' if identical else 'MISMATCH'} "
              f"(modelled {serial.ledger.total():.3f}s)")
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="reduction-topology sweep (serial fold vs tree)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes and single repetition (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail on any parity mismatch")
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 1),
                        help="thread-engine width for tree combines "
                             "(default: cpu count, min 2)")
    parser.add_argument("--out", default="BENCH_reduce.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        shapes = [(16, 256, 64), (32, 512, 64)]
        repeats, max_iter = 1, 3
    else:
        shapes = [(32, 1024, 128), (64, 1024, 128), (64, 2048, 256)]
        repeats, max_iter = 3, 10

    print(f"merge sweep (best of {repeats}, {args.workers} workers, "
          f"cpu_count={os.cpu_count()}):")
    merge_rows = _merge_sweep(shapes, args.workers, repeats)
    print("executor reduction-parity sweep:")
    fit_rows = _fit_sweep(args.workers, max_iter=max_iter)

    payload = {
        "benchmark": "reduce",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "merge": merge_rows,
        "fit": fit_rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [r for r in merge_rows + fit_rows
               if not r["identical_results"]]
        if bad:
            print(f"CHECK FAILED: reduction parity mismatch in "
                  f"{len(bad)} rows")
            return 1
        best = max(r["speedup"] for r in merge_rows)
        print(f"check ok: all parity rows hold; best tree speedup "
              f"{best:.2f}x on cpu_count={os.cpu_count()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
