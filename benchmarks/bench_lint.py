"""Benchmark of reprolint's incremental cache: cold vs warm wall time.

One sweep, standalone (no pytest-benchmark dependency): lint
``src/ benchmarks/ examples/`` three ways —

* **cold** — no cache: parse every file, run every per-file rule, build
  the call graph, run every whole-program taint fixpoint;
* **prime** — cold with an empty cache directory (cold work + writes);
* **warm** — the same cache directory again: unchanged files reuse their
  stored findings/summaries, and the unchanged tree digest reuses the
  whole-program findings outright, so nothing is re-parsed or re-tainted.

The JSON also records per-rule finding counts (suppressed included), so
a rules regression shows up next to the timing it caused.

Run::

    PYTHONPATH=src python benchmarks/bench_lint.py \
        [--check] [--repeats N] [--out BENCH_lint.json]

``--check`` gates the cache contract: the warm run must be >= 2x faster
than the cold run, the warm findings bit-identical to the cold findings,
and every warm per-file lookup a hit.
"""

import argparse
import collections
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.cache import LintCache
from repro.analysis.reprolint import lint_paths

REPO = Path(__file__).resolve().parents[1]
LINT_PATHS = [REPO / "src", REPO / "benchmarks", REPO / "examples"]

#: The gate: a warm run re-reads sources and hashes them, but skips
#: parsing, rule evaluation, and the taint fixpoints — anything under 2x
#: means the cache is storing the wrong things.
MIN_WARM_SPEEDUP = 2.0


def _best_of(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _rule_counts(findings):
    counts = collections.Counter(f.rule for f in findings)
    return dict(sorted(counts.items()))


def run_sweep(repeats):
    paths = [p for p in LINT_PATHS if p.exists()]

    t_cold, cold = _best_of(lambda: lint_paths(paths), repeats)
    print(f"  cold: {t_cold * 1e3:8.1f} ms  "
          f"({len(cold)} findings incl. suppressed)")

    with tempfile.TemporaryDirectory(prefix="reprolint-bench-") as root:
        prime_cache = LintCache(root)
        t_prime, _ = _best_of(
            lambda: lint_paths(paths, cache=prime_cache), 1)
        print(f"  prime: {t_prime * 1e3:7.1f} ms  "
              f"(cold + cache writes)")

        warm_cache = LintCache(root)
        t_warm, warm = _best_of(
            lambda: lint_paths(paths, cache=warm_cache), repeats)
        print(f"  warm: {t_warm * 1e3:8.1f} ms  "
              f"({warm_cache.hits} hits, {warm_cache.misses} misses)")

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    print(f"  warm speedup: {speedup:.2f}x")
    return {
        "paths": [str(p.relative_to(REPO)) for p in paths],
        "cold_s": t_cold,
        "prime_s": t_prime,
        "warm_s": t_warm,
        "warm_speedup": speedup,
        "warm_hits": warm_cache.hits,
        "warm_misses": warm_cache.misses,
        "warm_project_hits": warm_cache.project_hits,
        "identical_results": warm == cold,
        "findings_total": len(cold),
        "findings_active": sum(1 for f in cold if not f.suppressed),
        "findings_by_rule": _rule_counts(cold),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="reprolint cold vs warm-cache sweep")
    parser.add_argument("--check", action="store_true",
                        help="fail unless warm >= 2x faster than cold, "
                             "bit-identical findings, all-hit warm run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repetitions for cold/warm timings")
    parser.add_argument("--out", default="BENCH_lint.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    print(f"reprolint cache sweep (best of {args.repeats}, "
          f"cpu_count={os.cpu_count()}):")
    row = run_sweep(args.repeats)

    payload = {
        "benchmark": "lint",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        **row,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        problems = []
        if row["warm_speedup"] < MIN_WARM_SPEEDUP:
            problems.append(
                f"warm speedup {row['warm_speedup']:.2f}x < "
                f"{MIN_WARM_SPEEDUP:.1f}x")
        if not row["identical_results"]:
            problems.append("warm findings differ from cold findings")
        if row["warm_misses"]:
            problems.append(
                f"{row['warm_misses']} cache misses on an unchanged tree")
        if problems:
            print("CHECK FAILED: " + "; ".join(problems))
            return 1
        print(f"check ok: warm {row['warm_speedup']:.2f}x faster, "
              f"bit-identical findings, all-hit warm run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
