"""Bench: Figure 3 — Level 1 (dataflow partition) on the UCI datasets.

Model backend regenerates the figure at paper scale; the execute backend
runs the same Level-1 algorithm for real at reduced scale.
"""

import numpy as np
from conftest import assert_all_checks

from repro.core.level1 import run_level1
from repro.experiments import figure3


def test_figure3_model(benchmark):
    out = benchmark(figure3.run)
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure3_execute_level1(benchmark, exec_machine, exec_workload):
    """One real Level-1 iteration sweep over k at reduced scale."""
    X, _ = exec_workload

    def run():
        results = {}
        for k in (4, 8, 16):
            C0 = np.array(X[:k], dtype=np.float64)
            r = run_level1(X, C0, exec_machine, max_iter=2)
            results[k] = r.mean_iteration_seconds()
        return results

    times = benchmark(run)
    # The paper's Figure-3 claim at reduced scale: time grows with k.
    assert times[16] > times[4]
