"""Microbenchmarks of the numerical kernels every level shares.

These are the hot loops of the execute backend: assignment (distance +
argmin), scatter accumulation, and the two distance formulations compared
by the kernel ablation in DESIGN.md.
"""

import numpy as np
import pytest

from repro.core._common import (
    accumulate,
    assign_chunked,
    squared_distances,
    squared_distances_expanded,
    update_centroids,
)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(20_000, 64))
    C = rng.normal(size=(64, 64))
    return X, C


def test_assign_chunked(benchmark, workload):
    X, C = workload
    out = benchmark(assign_chunked, X, C)
    assert out.shape == (X.shape[0],)


def test_squared_distances_direct(benchmark, workload):
    X, C = workload
    d2 = benchmark(squared_distances, X[:2000], C)
    assert d2.shape == (2000, 64)


def test_squared_distances_expanded(benchmark, workload):
    X, C = workload
    d2 = benchmark(squared_distances_expanded, X[:2000], C)
    assert d2.shape == (2000, 64)


def test_accumulate(benchmark, workload):
    X, C = workload
    assignments = assign_chunked(X, C)
    sums, counts = benchmark(accumulate, X, assignments, C.shape[0])
    assert counts.sum() == X.shape[0]


def test_update_centroids(benchmark, workload):
    X, C = workload
    assignments = assign_chunked(X, C)
    sums, counts = accumulate(X, assignments, C.shape[0])
    new = benchmark(update_centroids, sums, counts, C)
    assert new.shape == C.shape
