"""Microbenchmarks of the numerical kernels every level shares.

These are the hot loops of the execute backend: assignment (distance +
argmin) under both kernel backends, scatter accumulation, and the two
distance formulations compared by the kernel ablation in DESIGN.md.

Two ways to run it:

* ``pytest benchmarks/bench_kernels.py --benchmark-only`` — the usual
  pytest-benchmark microbenches below;
* ``PYTHONPATH=src python benchmarks/bench_kernels.py [--quick] [--check]
  [--out BENCH_kernels.json]`` — a standalone comparison sweep: naive vs
  gemm ``assign`` over a (k, d) grid at n = 100,000, an
  iterations-to-converge sweep of gemm vs the bounds-pruned kernel on the
  flagship shape (per-iteration pruning rate and speedup), plus full
  ledgered vs ``model_costs=False`` fits, written as JSON.  ``--check``
  exits non-zero if gemm is slower than naive on the flagship shape, any
  backend pair disagrees, the pruning rate fails to grow toward
  convergence, or (full mode) the late-iteration pruned speedup falls
  below 2x.
"""

import numpy as np
import pytest

from repro.core._common import (
    accumulate,
    assign_chunked,
    squared_distances,
    squared_distances_expanded,
    update_centroids,
)
from repro.core.bounds import centroid_drift, centroid_separation
from repro.core.kernels import GemmKernel, NaiveKernel, PrunedKernel


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(20_000, 64))
    C = rng.normal(size=(64, 64))
    return X, C


def test_assign_chunked(benchmark, workload):
    X, C = workload
    out = benchmark(assign_chunked, X, C)
    assert out.shape == (X.shape[0],)


def test_assign_naive_kernel(benchmark, workload):
    X, C = workload
    out = benchmark(NaiveKernel().assign, X, C)
    assert out.shape == (X.shape[0],)


def test_assign_gemm_kernel(benchmark, workload):
    X, C = workload
    kernel = GemmKernel()
    out = benchmark(kernel.assign, X, C)
    assert out.shape == (X.shape[0],)
    np.testing.assert_array_equal(out, NaiveKernel().assign(X, C))


def test_squared_distances_direct(benchmark, workload):
    X, C = workload
    d2 = benchmark(squared_distances, X[:2000], C)
    assert d2.shape == (2000, 64)


def test_squared_distances_expanded(benchmark, workload):
    X, C = workload
    d2 = benchmark(squared_distances_expanded, X[:2000], C)
    assert d2.shape == (2000, 64)


def test_accumulate(benchmark, workload):
    X, C = workload
    assignments = assign_chunked(X, C)
    sums, counts = benchmark(accumulate, X, assignments, C.shape[0])
    assert counts.sum() == X.shape[0]


def test_update_centroids(benchmark, workload):
    X, C = workload
    assignments = assign_chunked(X, C)
    sums, counts = accumulate(X, assignments, C.shape[0])
    new = benchmark(update_centroids, sums, counts, C)
    assert new.shape == C.shape


# ---------------------------------------------------------------------------
# Standalone sweep: naive vs gemm, ledgered vs NullLedger
# ---------------------------------------------------------------------------

FLAGSHIP = (256, 64)  # the acceptance shape: k=256, d=64 at n=100k


def _best_of(fn, repeats):
    import time
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assign_sweep(n, ks, ds, repeats):
    rng = np.random.default_rng(42)
    rows = []
    for d in ds:
        X = rng.normal(size=(n, d))
        for k in ks:
            C = rng.normal(size=(k, d))
            naive, gemm = NaiveKernel(), GemmKernel()
            a_naive = naive.assign(X, C)
            a_gemm = gemm.assign(X, C)
            identical = bool(np.array_equal(a_naive, a_gemm))
            t_naive = _best_of(lambda: naive.assign(X, C), repeats)
            t_gemm = _best_of(lambda: gemm.assign(X, C), repeats)
            rows.append({
                "n": n, "k": k, "d": d,
                "naive_seconds": t_naive,
                "gemm_seconds": t_gemm,
                "speedup": t_naive / t_gemm,
                "identical_assignments": identical,
            })
            print(f"  assign n={n} k={k:4d} d={d:3d}: "
                  f"naive {t_naive:8.4f}s  gemm {t_gemm:8.4f}s  "
                  f"{t_naive / t_gemm:5.2f}x  "
                  f"{'ok' if identical else 'MISMATCH'}")
    return rows


def _timed_best(fn, repeats):
    import time
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _convergence_sweep(n, k, d, iters, repeats):
    """Iterations-to-converge comparison: gemm vs pruned, one trajectory.

    The centroid trajectory is advanced by the gemm sweep (both kernels
    produce it bit-identically — asserted per iteration); each iteration
    times the stateless gemm ``assign_accumulate`` against the pruned
    kernel's stateful step from the previous iteration's committed bounds.
    Early iterations prune nothing (bounds are loose while centroids move);
    the interesting number is the late-iteration speedup once the run
    settles, which is what the ``--check`` gate asserts.
    """
    from repro.data.synthetic import gaussian_blobs

    X, _ = gaussian_blobs(n=n, k=k, d=d, seed=11)
    C = np.array(X[:k], copy=True)
    gemm, pruned = GemmKernel(), PrunedKernel()
    labels = d2 = lb = anchor = None
    rows = []
    for it in range(1, iters + 1):
        t_gemm, g_out = _timed_best(
            lambda: gemm.assign_accumulate(X, C), repeats)
        g_labels, g_d2, g_sums, g_counts = g_out
        if anchor is None:
            t_pruned, p_out = _timed_best(
                lambda: pruned.establish(X, C), repeats)
        else:
            drift = centroid_drift(anchor, C)
            _, s = centroid_separation(C)
            t_pruned, p_out = _timed_best(
                lambda: pruned.assign_accumulate_pruned(
                    X, C, labels, d2, lb, drift, s), repeats)
        p_labels, p_d2, p_sums, p_counts, p_lb, n_dist = p_out
        identical = (bool(np.array_equal(g_labels, p_labels))
                     and bool(np.array_equal(g_d2, p_d2))
                     and bool(np.array_equal(g_sums, p_sums))
                     and bool(np.array_equal(g_counts, p_counts)))
        pruning_rate = 1.0 - n_dist / float(n * k)
        rows.append({
            "iteration": it, "n": n, "k": k, "d": d,
            "gemm_seconds": t_gemm,
            "pruned_seconds": t_pruned,
            "speedup": t_gemm / t_pruned,
            "distance_evals": int(n_dist),
            "pruning_rate": pruning_rate,
            "identical": identical,
        })
        print(f"  iter {it:3d}: gemm {t_gemm:8.4f}s  "
              f"pruned {t_pruned:8.4f}s  {t_gemm / t_pruned:5.2f}x  "
              f"pruned {pruning_rate:6.1%} of evals  "
              f"{'ok' if identical else 'MISMATCH'}")
        labels, d2, lb = p_labels, p_d2, p_lb
        anchor = np.array(C, copy=True)
        C = update_centroids(g_sums, g_counts, C)
    return rows


def _ledger_sweep(repeats):
    import time

    from repro.core.kmeans import HierarchicalKMeans
    from repro.data.synthetic import gaussian_blobs
    from repro.machine.machine import toy_machine

    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    X, _ = gaussian_blobs(n=20_000, k=16, d=32, seed=7)
    rows = []
    for level in (1, 2, 3):
        def fit(model_costs):
            return HierarchicalKMeans(
                16, machine=machine, level=level, init="first",
                max_iter=15, model_costs=model_costs).fit(X)

        ledgered = fit(True)
        pure = fit(False)
        identical = (bool(np.array_equal(ledgered.assignments,
                                         pure.assignments))
                     and bool(np.array_equal(ledgered.centroids,
                                             pure.centroids)))
        t_led = _best_of(lambda: fit(True), repeats)
        t_null = _best_of(lambda: fit(False), repeats)
        rows.append({
            "level": level, "n": X.shape[0], "k": 16, "d": 32,
            "ledgered_seconds": t_led,
            "null_ledger_seconds": t_null,
            "speedup": t_led / t_null,
            "identical_numerics": identical,
        })
        print(f"  fit level {level}: ledgered {t_led:8.4f}s  "
              f"null {t_null:8.4f}s  {t_led / t_null:5.2f}x  "
              f"{'ok' if identical else 'MISMATCH'}")
    return rows


def main(argv=None):
    import argparse
    import json
    import platform

    parser = argparse.ArgumentParser(
        description="naive-vs-gemm kernel and ledgered-vs-null sweep")
    parser.add_argument("--quick", action="store_true",
                        help="smaller n and single repetition (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail if gemm is slower on the flagship shape "
                             "or any assignments mismatch")
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    n = 20_000 if args.quick else 100_000
    repeats = 1 if args.quick else 3
    print(f"assign sweep at n={n} (best of {repeats}):")
    assign_rows = _assign_sweep(n, ks=(16, 64, 256), ds=(16, 64),
                                repeats=repeats)
    if args.quick:
        conv_shape = dict(n=20_000, k=64, d=32, iters=8, repeats=1)
    else:
        conv_shape = dict(n=100_000, k=FLAGSHIP[0], d=FLAGSHIP[1],
                          iters=30, repeats=2)
    print(f"convergence sweep gemm vs pruned at "
          f"n={conv_shape['n']} k={conv_shape['k']} d={conv_shape['d']}:")
    convergence_rows = _convergence_sweep(**conv_shape)
    print("ledger sweep:")
    ledger_rows = _ledger_sweep(repeats=1 if args.quick else 2)

    payload = {
        "benchmark": "kernels",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "assign": assign_rows,
        "convergence": convergence_rows,
        "ledger": ledger_rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [r for r in assign_rows if not r["identical_assignments"]]
        bad += [r for r in convergence_rows if not r["identical"]]
        bad += [r for r in ledger_rows if not r["identical_numerics"]]
        if bad:
            print(f"CHECK FAILED: backend mismatch in {len(bad)} rows")
            return 1
        flagship = next(r for r in assign_rows
                        if (r["k"], r["d"]) == FLAGSHIP)
        if flagship["speedup"] < 1.0:
            print(f"CHECK FAILED: gemm slower than naive on flagship shape "
                  f"({flagship['speedup']:.2f}x)")
            return 1
        tail = min(5, len(convergence_rows) // 2)
        early_rate = np.mean(
            [r["pruning_rate"] for r in convergence_rows[:tail]])
        late_rate = np.mean(
            [r["pruning_rate"] for r in convergence_rows[-tail:]])
        if late_rate <= early_rate:
            print(f"CHECK FAILED: pruning rate does not grow toward "
                  f"convergence (early {early_rate:.1%}, late "
                  f"{late_rate:.1%})")
            return 1
        late_speedup = float(np.mean(
            [r["speedup"] for r in convergence_rows[-tail:]]))
        if not args.quick and late_speedup < 2.0:
            print(f"CHECK FAILED: late-iteration pruned speedup "
                  f"{late_speedup:.2f}x < 2.0x on the flagship shape")
            return 1
        print(f"check ok: flagship speedup {flagship['speedup']:.2f}x, "
              f"late pruning rate {late_rate:.1%}, "
              f"late pruned speedup {late_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
