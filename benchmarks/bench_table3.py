"""Bench: Table III — execution-time comparison against other systems."""

from conftest import assert_all_checks

from repro.experiments import table3


def test_table3_architecture_comparison(benchmark):
    out = benchmark(table3.run)
    assert_all_checks(out)
    print("\n" + out.text)
