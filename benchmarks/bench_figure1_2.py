"""Bench: Figures 1 and 2 — architecture/partition diagram regeneration."""

from conftest import assert_all_checks

from repro.experiments import run_experiment


def test_figure1_processor_architecture(benchmark):
    out = benchmark(run_experiment, "figure1")
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure2_partition_design(benchmark):
    out = benchmark(run_experiment, "figure2")
    assert_all_checks(out)
    print("\n" + out.text)
