"""Bench: Figure 6 — Level 3 large-scale scaling in centroids and nodes."""

import numpy as np
from conftest import assert_all_checks

from repro.core.level3 import run_level3
from repro.experiments import figure6
from repro.machine.machine import toy_machine


def test_figure6_model(benchmark):
    out = benchmark(figure6.run)
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure6_execute_node_scaling(benchmark):
    """Real Level-3 strong scaling across toy-machine sizes."""
    from repro.data.synthetic import gaussian_blobs
    X, _ = gaussian_blobs(n=2000, k=16, d=64, seed=3)
    C0 = np.array(X[:16], dtype=np.float64)

    def run():
        times = {}
        for nodes in (1, 2, 4):
            machine = toy_machine(n_nodes=nodes, cgs_per_node=2, mesh=4,
                                  ldm_bytes=16 * 1024)
            r = run_level3(X, C0, machine, max_iter=2)
            times[nodes] = r.mean_iteration_seconds()
        return times

    times = benchmark(run)
    # Strong scaling: more nodes => lower modelled per-iteration time.
    assert times[4] < times[1]
