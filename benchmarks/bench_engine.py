"""Benchmarks of the host execution engine and the fused hot path.

Four sweeps, all standalone (no pytest-benchmark dependency):

* **engine** — serial vs ThreadEngine vs ProcessEngine wall-clock for
  ``lloyd`` over an {n, k, d} x kernel grid including the flagship shape
  (n=100k, k=256, d=64, gemm), asserting bit-identical centroids between
  all engines;
* **parity** — full ledgered executor fits (toy machine, levels 1-3)
  serial vs thread vs process, asserting bit-identical centroids,
  assignments, and modelled ledger seconds;
* **chaos** — a ``worker_kill`` sweep under the process engine: workers
  are SIGKILL'd mid-task by the hundreds and the run must still land
  bit-identical on the fault-free serial baseline (the kill count is
  recorded and gated);
* **fused** — the fused ``assign_accumulate`` + inertia-from-best-d2 path
  vs the unfused ``assign_with_distances`` + ``np.add.at`` accumulate +
  separate inertia pass it replaced, per kernel backend.

Run::

    PYTHONPATH=src python benchmarks/bench_engine.py \
        [--quick] [--check] [--workers N] [--out BENCH_engine.json]

``--check`` exits non-zero when any parity assertion fails, the chaos
sweep injects fewer than 100 kills (or drifts numerically), or the fused
path is slower than the unfused one on the flagship shape.  Thread and
process *speedups* are recorded always but gated only where the host can
physically show one (``cpu_count`` is written into the JSON; a
single-core host runs real processes, just not in parallel).
"""

import argparse
import json
import os
import platform
import sys
import time
import warnings

import numpy as np

from repro.core._common import accumulate, inertia
from repro.core.kernels import resolve_kernel
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine
from repro.runtime.chaos import ChaosInjector, parse_chaos_plan
from repro.runtime.engine import SerialEngine, ThreadEngine, shutdown_pools
from repro.runtime.process_engine import ProcessEngine

FLAGSHIP = (100_000, 256, 64, "gemm")  # acceptance shape for the engine sweep


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# engine sweep: serial vs thread lloyd
# ---------------------------------------------------------------------------

def _engine_sweep(shapes, kernels, workers, repeats, max_iter):
    rng = np.random.default_rng(42)
    rows = []
    for (n, k, d) in shapes:
        X = rng.normal(size=(n, d))
        C0 = X[:k].copy()
        for kernel in kernels:
            def run(engine):
                # tol=0 never converges in a few iterations on random data;
                # the warning for hitting max_iter is expected, not a bug.
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    return lloyd(X, C0, max_iter=max_iter, tol=0.0,
                                 kernel=kernel, engine=engine,
                                 workers=workers
                                 if engine in ("thread", "process")
                                 else None)

            serial = run("serial")
            threaded = run("thread")
            processed = run("process")
            identical = all(
                bool(np.array_equal(serial.centroids, other.centroids))
                and bool(np.array_equal(serial.assignments,
                                        other.assignments))
                and serial.inertia == other.inertia
                for other in (threaded, processed))
            t_serial = _best_of(lambda: run("serial"), repeats)
            t_thread = _best_of(lambda: run("thread"), repeats)
            t_process = _best_of(lambda: run("process"), repeats)
            rows.append({
                "n": n, "k": k, "d": d, "kernel": kernel,
                "workers": workers,
                "serial_seconds": t_serial,
                "thread_seconds": t_thread,
                "process_seconds": t_process,
                "speedup": t_serial / t_thread,
                "process_speedup": t_serial / t_process,
                "identical_results": identical,
            })
            print(f"  lloyd n={n:7d} k={k:4d} d={d:3d} {kernel:5s}: "
                  f"serial {t_serial:8.4f}s  thread({workers}) "
                  f"{t_thread:8.4f}s {t_serial / t_thread:5.2f}x  "
                  f"process({workers}) {t_process:8.4f}s "
                  f"{t_serial / t_process:5.2f}x  "
                  f"{'ok' if identical else 'MISMATCH'}")
    return rows


# ---------------------------------------------------------------------------
# parity sweep: ledgered executors, serial vs thread
# ---------------------------------------------------------------------------

def _parity_sweep(workers, max_iter):
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    X, _ = gaussian_blobs(n=20_000, k=16, d=32, seed=7)
    rows = []
    for level in (1, 2, 3):
        def fit(engine):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return HierarchicalKMeans(
                    16, machine=machine, level=level, init="first",
                    max_iter=max_iter, engine=engine,
                    workers=workers
                    if engine in ("thread", "process") else None).fit(X)

        serial = fit("serial")
        identical = {}
        for name in ("thread", "process"):
            other = fit(name)
            identical[name] = (
                bool(np.array_equal(serial.centroids, other.centroids))
                and bool(np.array_equal(serial.assignments,
                                        other.assignments))
                and serial.ledger.records == other.ledger.records)
        rows.append({
            "level": level, "n": X.shape[0], "k": 16, "d": 32,
            "workers": workers,
            "identical_results": identical["thread"] and identical["process"],
            "identical_thread": identical["thread"],
            "identical_process": identical["process"],
            "modelled_seconds": serial.ledger.total(),
        })
        print(f"  executor level {level}: serial vs thread/process"
              f"({workers}) "
              f"{'bit-identical' if rows[-1]['identical_results'] else 'MISMATCH'} "
              f"(modelled {serial.ledger.total():.3f}s)")
    return rows


# ---------------------------------------------------------------------------
# worker-kill chaos sweep: crash tolerance, measured
# ---------------------------------------------------------------------------

def _worker_kill_sweep(workers, kill_p, max_iter):
    """SIGKILL workers by the hundreds; the numbers must not move.

    Small chunks fan one run out over thousands of tasks, so a per-task
    kill probability injects a large absolute number of worker deaths.
    Every death is detected by the supervisor, the slot respawned, and the
    lost task re-executed in canonical order — the acceptance gate is
    ``kills >= 100`` with bit-identical centroids/assignments/inertia
    against the fault-free serial baseline at the same chunking.
    """
    n, k, d, chunk = 4_000, 8, 8, 64
    X, _ = gaussian_blobs(n=n, k=k, d=d, seed=17)
    C0 = X[:k].copy()

    def run(engine):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return lloyd(X, C0, max_iter=max_iter, tol=0.0, engine=engine,
                         chunk_elements=chunk)

    serial = run(SerialEngine())
    plan = parse_chaos_plan(f"worker_kill:p={kill_p};seed=23")
    engine = ProcessEngine(workers=workers, chaos=ChaosInjector(plan))
    t0 = time.perf_counter()
    chaotic = run(engine)
    seconds = time.perf_counter() - t0

    kills = sum(1 for e in chaotic.host_events if e.kind == "worker_lost")
    respawns = sum(1 for e in chaotic.host_events
                   if e.kind == "worker_respawn")
    identical = (
        bool(np.array_equal(serial.centroids, chaotic.centroids))
        and bool(np.array_equal(serial.assignments, chaotic.assignments))
        and serial.inertia == chaotic.inertia)
    row = {
        "n": n, "k": k, "d": d, "chunk_elements": chunk,
        "workers": workers, "kill_probability": kill_p,
        "max_iter": max_iter,
        "worker_kills": kills,
        "worker_respawns": respawns,
        "seconds": seconds,
        "identical_results": identical,
    }
    print(f"  worker_kill p={kill_p}: {kills} kills, {respawns} respawns "
          f"in {seconds:.2f}s — "
          f"{'bit-identical' if identical else 'MISMATCH'}")
    return row


# ---------------------------------------------------------------------------
# fused vs unfused ablation
# ---------------------------------------------------------------------------

def _unfused_iteration(X, C, backend):
    """The seed's hot path: sweep, np.add.at scatter, separate inertia."""
    idx, _ = backend.assign_with_distances(X, C)
    k = C.shape[0]
    sums = np.zeros((k, X.shape[1]), dtype=np.float64)
    np.add.at(sums, idx, X)
    counts = np.bincount(idx, minlength=k)
    obj = inertia(X, C, idx)
    return idx, sums, counts, obj


def _fused_iteration(X, C, backend):
    """The current hot path: fused sweep + bincount + inertia from best."""
    idx, best, sums, counts = backend.assign_accumulate(X, C)
    obj = float(best.sum() / X.shape[0])
    return idx, sums, counts, obj


def _fused_sweep(n, k, d, kernels, repeats):
    rng = np.random.default_rng(11)
    X = rng.normal(size=(n, d))
    C = rng.normal(size=(k, d))
    rows = []
    for kernel in kernels:
        backend = resolve_kernel(kernel)
        u_idx, u_sums, u_counts, u_obj = _unfused_iteration(X, C, backend)
        f_idx, f_sums, f_counts, f_obj = _fused_iteration(X, C, backend)
        identical = (
            bool(np.array_equal(u_idx, f_idx))
            and bool(np.array_equal(u_sums, f_sums))
            and bool(np.array_equal(u_counts, f_counts))
            and abs(u_obj - f_obj) <= 1e-9 * max(1.0, abs(u_obj)))
        t_unfused = _best_of(
            lambda: _unfused_iteration(X, C, backend), repeats)
        t_fused = _best_of(
            lambda: _fused_iteration(X, C, backend), repeats)
        rows.append({
            "n": n, "k": k, "d": d, "kernel": kernel,
            "unfused_seconds": t_unfused,
            "fused_seconds": t_fused,
            "speedup": t_unfused / t_fused,
            "identical_results": identical,
        })
        print(f"  fused n={n} k={k} d={d} {kernel:5s}: "
              f"unfused {t_unfused:8.4f}s  fused {t_fused:8.4f}s  "
              f"{t_unfused / t_fused:5.2f}x  "
              f"{'ok' if identical else 'MISMATCH'}")
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="execution-engine and fused-hot-path sweep")
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes and single repetition (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail on any parity mismatch, or on the fused "
                             "path losing to the unfused one")
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 1),
                        help="thread-engine width (default: cpu count, "
                             "min 2)")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        shapes = [(20_000, 64, 16), (20_000, 256, 64)]
        repeats, max_iter = 1, 3
        fused_shape = (20_000, 256, 64)
    else:
        shapes = [(50_000, 64, 16), (100_000, 64, 64), (100_000, 256, 64)]
        repeats, max_iter = 3, 5
        fused_shape = (100_000, 256, 64)

    print(f"engine sweep (best of {repeats}, {max_iter} iterations, "
          f"{args.workers} workers, cpu_count={os.cpu_count()}):")
    engine_rows = _engine_sweep(shapes, ("naive", "gemm"), args.workers,
                                repeats, max_iter)
    print("executor parity sweep:")
    parity_rows = _parity_sweep(args.workers, max_iter=10)
    print("worker-kill chaos sweep:")
    chaos_row = _worker_kill_sweep(args.workers, kill_p=0.08,
                                   max_iter=3 if args.quick else 5)
    print("fused-vs-unfused ablation:")
    fused_rows = _fused_sweep(*fused_shape, ("naive", "gemm"), repeats)
    shutdown_pools()

    payload = {
        "benchmark": "engine",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "engine": engine_rows,
        "parity": parity_rows,
        "worker_kill": chaos_row,
        "fused": fused_rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [r for r in engine_rows + parity_rows + fused_rows + [chaos_row]
               if not r["identical_results"]]
        if bad:
            print(f"CHECK FAILED: engine/fused mismatch in {len(bad)} rows")
            return 1
        if chaos_row["worker_kills"] < 100:
            print(f"CHECK FAILED: worker_kill sweep injected only "
                  f"{chaos_row['worker_kills']} kills (< 100); the chaos "
                  f"plan is not exercising the supervisor")
            return 1
        # The fused win concentrates where the sweep is cheap relative to
        # the scatter — the gemm flagship row gates strictly; the naive
        # rows (sweep-dominated, the fusion saving is in the noise) only
        # guard against a real regression.
        losers = [r for r in fused_rows
                  if r["speedup"] < (1.0 if r["kernel"] == "gemm" else 0.9)]
        if losers:
            print("CHECK FAILED: fused path slower than unfused on "
                  + ", ".join(f"k={r['k']} d={r['d']} {r['kernel']}"
                              for r in losers))
            return 1
        best_thread = max(r["speedup"] for r in engine_rows)
        best_process = max(r["process_speedup"] for r in engine_rows)
        # The process speedup gate only makes sense where parallel
        # hardware exists: a single-core host runs real forked workers,
        # but physically cannot beat serial — record honestly, gate never.
        cpus = os.cpu_count() or 1
        if cpus > 1 and not args.quick and best_process < 2.0:
            print(f"CHECK FAILED: best process speedup {best_process:.2f}x "
                  f"< 2x with cpu_count={cpus}")
            return 1
        print(f"check ok: all parity rows bit-identical; "
              f"{chaos_row['worker_kills']} worker kills survived; best "
              f"thread {best_thread:.2f}x, best process {best_process:.2f}x "
              f"on cpu_count={cpus}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
