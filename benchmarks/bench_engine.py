"""Benchmarks of the host execution engine and the fused hot path.

Three sweeps, all standalone (no pytest-benchmark dependency):

* **engine** — serial vs ThreadEngine wall-clock for ``lloyd`` over an
  {n, k, d} x kernel grid including the flagship shape (n=100k, k=256,
  d=64, gemm), asserting bit-identical centroids between engines;
* **parity** — full ledgered executor fits (toy machine, levels 1-3)
  serial vs thread, asserting bit-identical centroids, assignments, and
  modelled ledger seconds;
* **fused** — the fused ``assign_accumulate`` + inertia-from-best-d2 path
  vs the unfused ``assign_with_distances`` + ``np.add.at`` accumulate +
  separate inertia pass it replaced, per kernel backend.

Run::

    PYTHONPATH=src python benchmarks/bench_engine.py \
        [--quick] [--check] [--workers N] [--out BENCH_engine.json]

``--check`` exits non-zero when any parity assertion fails or the fused
path is slower than the unfused one on the flagship shape.  Thread
*speedup* is recorded but not gated: it is a property of the host
(``cpu_count`` is written into the JSON), and a single-core host cannot
show one by construction.
"""

import argparse
import json
import os
import platform
import sys
import time
import warnings

import numpy as np

from repro.core._common import accumulate, inertia
from repro.core.kernels import resolve_kernel
from repro.core.kmeans import HierarchicalKMeans
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine
from repro.runtime.engine import ThreadEngine

FLAGSHIP = (100_000, 256, 64, "gemm")  # acceptance shape for the engine sweep


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# engine sweep: serial vs thread lloyd
# ---------------------------------------------------------------------------

def _engine_sweep(shapes, kernels, workers, repeats, max_iter):
    rng = np.random.default_rng(42)
    rows = []
    for (n, k, d) in shapes:
        X = rng.normal(size=(n, d))
        C0 = X[:k].copy()
        for kernel in kernels:
            def run(engine):
                # tol=0 never converges in a few iterations on random data;
                # the warning for hitting max_iter is expected, not a bug.
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    return lloyd(X, C0, max_iter=max_iter, tol=0.0,
                                 kernel=kernel, engine=engine,
                                 workers=workers if engine == "thread"
                                 else None)

            serial = run("serial")
            threaded = run("thread")
            identical = (
                bool(np.array_equal(serial.centroids, threaded.centroids))
                and bool(np.array_equal(serial.assignments,
                                        threaded.assignments))
                and serial.inertia == threaded.inertia)
            t_serial = _best_of(lambda: run("serial"), repeats)
            t_thread = _best_of(lambda: run("thread"), repeats)
            rows.append({
                "n": n, "k": k, "d": d, "kernel": kernel,
                "workers": workers,
                "serial_seconds": t_serial,
                "thread_seconds": t_thread,
                "speedup": t_serial / t_thread,
                "identical_results": identical,
            })
            print(f"  lloyd n={n:7d} k={k:4d} d={d:3d} {kernel:5s}: "
                  f"serial {t_serial:8.4f}s  thread({workers}) "
                  f"{t_thread:8.4f}s  {t_serial / t_thread:5.2f}x  "
                  f"{'ok' if identical else 'MISMATCH'}")
    return rows


# ---------------------------------------------------------------------------
# parity sweep: ledgered executors, serial vs thread
# ---------------------------------------------------------------------------

def _parity_sweep(workers, max_iter):
    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    X, _ = gaussian_blobs(n=20_000, k=16, d=32, seed=7)
    rows = []
    for level in (1, 2, 3):
        def fit(engine):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                return HierarchicalKMeans(
                    16, machine=machine, level=level, init="first",
                    max_iter=max_iter, engine=engine,
                    workers=workers if engine == "thread" else None).fit(X)

        serial = fit("serial")
        threaded = fit("thread")
        identical = (
            bool(np.array_equal(serial.centroids, threaded.centroids))
            and bool(np.array_equal(serial.assignments,
                                    threaded.assignments))
            and serial.ledger.records == threaded.ledger.records)
        rows.append({
            "level": level, "n": X.shape[0], "k": 16, "d": 32,
            "workers": workers,
            "identical_results": identical,
            "modelled_seconds": serial.ledger.total(),
        })
        print(f"  executor level {level}: serial vs thread({workers}) "
              f"{'bit-identical' if identical else 'MISMATCH'} "
              f"(modelled {serial.ledger.total():.3f}s)")
    return rows


# ---------------------------------------------------------------------------
# fused vs unfused ablation
# ---------------------------------------------------------------------------

def _unfused_iteration(X, C, backend):
    """The seed's hot path: sweep, np.add.at scatter, separate inertia."""
    idx, _ = backend.assign_with_distances(X, C)
    k = C.shape[0]
    sums = np.zeros((k, X.shape[1]), dtype=np.float64)
    np.add.at(sums, idx, X)
    counts = np.bincount(idx, minlength=k)
    obj = inertia(X, C, idx)
    return idx, sums, counts, obj


def _fused_iteration(X, C, backend):
    """The current hot path: fused sweep + bincount + inertia from best."""
    idx, best, sums, counts = backend.assign_accumulate(X, C)
    obj = float(best.sum() / X.shape[0])
    return idx, sums, counts, obj


def _fused_sweep(n, k, d, kernels, repeats):
    rng = np.random.default_rng(11)
    X = rng.normal(size=(n, d))
    C = rng.normal(size=(k, d))
    rows = []
    for kernel in kernels:
        backend = resolve_kernel(kernel)
        u_idx, u_sums, u_counts, u_obj = _unfused_iteration(X, C, backend)
        f_idx, f_sums, f_counts, f_obj = _fused_iteration(X, C, backend)
        identical = (
            bool(np.array_equal(u_idx, f_idx))
            and bool(np.array_equal(u_sums, f_sums))
            and bool(np.array_equal(u_counts, f_counts))
            and abs(u_obj - f_obj) <= 1e-9 * max(1.0, abs(u_obj)))
        t_unfused = _best_of(
            lambda: _unfused_iteration(X, C, backend), repeats)
        t_fused = _best_of(
            lambda: _fused_iteration(X, C, backend), repeats)
        rows.append({
            "n": n, "k": k, "d": d, "kernel": kernel,
            "unfused_seconds": t_unfused,
            "fused_seconds": t_fused,
            "speedup": t_unfused / t_fused,
            "identical_results": identical,
        })
        print(f"  fused n={n} k={k} d={d} {kernel:5s}: "
              f"unfused {t_unfused:8.4f}s  fused {t_fused:8.4f}s  "
              f"{t_unfused / t_fused:5.2f}x  "
              f"{'ok' if identical else 'MISMATCH'}")
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="execution-engine and fused-hot-path sweep")
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes and single repetition (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail on any parity mismatch, or on the fused "
                             "path losing to the unfused one")
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 1),
                        help="thread-engine width (default: cpu count, "
                             "min 2)")
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        shapes = [(20_000, 64, 16), (20_000, 256, 64)]
        repeats, max_iter = 1, 3
        fused_shape = (20_000, 256, 64)
    else:
        shapes = [(50_000, 64, 16), (100_000, 64, 64), (100_000, 256, 64)]
        repeats, max_iter = 3, 5
        fused_shape = (100_000, 256, 64)

    print(f"engine sweep (best of {repeats}, {max_iter} iterations, "
          f"{args.workers} workers, cpu_count={os.cpu_count()}):")
    engine_rows = _engine_sweep(shapes, ("naive", "gemm"), args.workers,
                                repeats, max_iter)
    print("executor parity sweep:")
    parity_rows = _parity_sweep(args.workers, max_iter=10)
    print("fused-vs-unfused ablation:")
    fused_rows = _fused_sweep(*fused_shape, ("naive", "gemm"), repeats)

    payload = {
        "benchmark": "engine",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "engine": engine_rows,
        "parity": parity_rows,
        "fused": fused_rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [r for r in engine_rows + parity_rows + fused_rows
               if not r["identical_results"]]
        if bad:
            print(f"CHECK FAILED: engine/fused mismatch in {len(bad)} rows")
            return 1
        # The fused win concentrates where the sweep is cheap relative to
        # the scatter — the gemm flagship row gates strictly; the naive
        # rows (sweep-dominated, the fusion saving is in the noise) only
        # guard against a real regression.
        losers = [r for r in fused_rows
                  if r["speedup"] < (1.0 if r["kernel"] == "gemm" else 0.9)]
        if losers:
            print("CHECK FAILED: fused path slower than unfused on "
                  + ", ".join(f"k={r['k']} d={r['d']} {r['kernel']}"
                              for r in losers))
            return 1
        best_thread = max(r["speedup"] for r in engine_rows)
        print(f"check ok: all parity rows bit-identical; best thread "
              f"speedup {best_thread:.2f}x on cpu_count={os.cpu_count()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
