"""Bench: Figure 5 — Level 3 at extreme (k, d) on ILSVRC2012 features.

Includes the paper's headline: < 18 s/iteration at k=2000, d=196,608 on
4,096 nodes (model backend), plus a real Level-3 run at reduced scale with
a high-dimensional feature workload.
"""

import numpy as np
from conftest import assert_all_checks

from repro.core.level3 import run_level3
from repro.data.synthetic import feature_vectors
from repro.experiments import figure5
from repro.machine.machine import toy_machine


def test_figure5_model(benchmark):
    out = benchmark(figure5.run)
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure5_execute_level3_high_dim(benchmark):
    """Real Level-3 on a d >> LDM-capacity workload (dimension partition)."""
    machine = toy_machine(n_nodes=4, cgs_per_node=2, mesh=4,
                          ldm_bytes=16 * 1024)
    X = feature_vectors(n=800, d=1024, seed=5)
    C0 = np.array(X[:8], dtype=np.float64)

    def run():
        return run_level3(X, C0, machine, max_iter=2)

    result = benchmark(run)
    assert result.n_iter >= 1
    # The dimension partition actually sliced d across CPEs.
    assert len(result.ledger.records) > 0
