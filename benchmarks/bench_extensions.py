"""Benches for the extension experiments and the bound-based baselines."""

import numpy as np
from conftest import assert_all_checks

from repro.baselines import hamerly, yinyang
from repro.core.init import init_centroids
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.experiments import run_experiment
from repro.runtime.host import lloyd_parallel


def test_extra_weak_scaling(benchmark):
    out = benchmark(run_experiment, "extra_weak_scaling")
    assert_all_checks(out)
    print("\n" + out.text)


def test_extra_breakdown(benchmark):
    out = benchmark(run_experiment, "extra_breakdown")
    assert_all_checks(out)
    print("\n" + out.text)


def test_extra_validation(benchmark):
    out = benchmark(run_experiment, "extra_validation")
    assert_all_checks(out)
    print("\n" + out.text)


class TestBaselineSpeed:
    """Wall-clock of Lloyd vs the bound-based exact accelerations.

    Same trajectory, less distance work: on well-clustered data the bounds
    should cut the distance evaluations by more than half (the assertion is
    on the work counter, not wall-clock, which Python-loop overheads can
    obscure at this scale).
    """

    def _workload(self):
        X, _ = gaussian_blobs(n=4000, k=32, d=24, seed=2)
        return X, init_centroids(X, 32, method="first")

    def test_lloyd(self, benchmark):
        X, C0 = self._workload()
        result = benchmark(lloyd, X, C0, max_iter=30)
        assert result.converged

    def test_hamerly(self, benchmark):
        X, C0 = self._workload()
        result, stats = benchmark(hamerly, X, C0, max_iter=30)
        assert result.converged
        assert stats.fraction_skipped > 0.5

    def test_yinyang(self, benchmark):
        X, C0 = self._workload()
        result, stats = benchmark(yinyang, X, C0, max_iter=30)
        assert result.converged
        assert stats.fraction_skipped > 0.4

    def test_lloyd_host_parallel(self, benchmark):
        X, C0 = self._workload()
        result = benchmark(lloyd_parallel, X, C0, max_iter=30, n_workers=2)
        assert result.converged


def test_extra_dimreduction(benchmark):
    out = benchmark.pedantic(run_experiment, args=("extra_dimreduction",),
                             rounds=1, iterations=1)
    assert_all_checks(out)
    print("\n" + out.text)


def test_extra_flexibility(benchmark):
    out = benchmark(run_experiment, "extra_flexibility")
    assert_all_checks(out)
    print("\n" + out.text)


def test_extra_bounded(benchmark):
    out = benchmark(run_experiment, "extra_bounded")
    assert_all_checks(out)
    print("\n" + out.text)


def test_level3_bounded_vs_plain(benchmark):
    """Wall-clock + modelled comparison of the bounded nkd executor."""
    from repro.core.level3 import run_level3
    from repro.core.level3_bounded import run_level3_bounded
    from repro.machine.machine import toy_machine

    machine = toy_machine(n_nodes=2, cgs_per_node=2, mesh=4,
                          ldm_bytes=64 * 1024)
    X, _ = gaussian_blobs(n=2000, k=20, d=32, seed=6)
    C0 = init_centroids(X, 20, method="first")

    def run():
        return run_level3_bounded(X, C0, machine, max_iter=30)

    bounded = benchmark(run)
    plain = run_level3(X, C0, machine, max_iter=30)
    assert (bounded.mean_iteration_seconds()
            < plain.mean_iteration_seconds())
