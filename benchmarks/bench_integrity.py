"""Integrity harness: silent corruption is absorbed, and verification is cheap.

The tentpole claim of the data-integrity layer, measured end to end with
seeded ``bitflip_*`` chaos across all three data planes:

* **absorption** — lloyd under partial + arena bitflip chaos with
  ``integrity="repair"`` finishes **bit-identical** to the fault-free
  serial baseline on both the serial and thread engines, while the same
  plan with ``integrity="off"`` silently converges to different
  centroids (the corruption is real, not self-correcting);
* **checkpoints** — every durable snapshot written under
  ``bitflip_checkpoint`` chaos is detected by the SHA-256 manifest
  (``verify`` raises a typed :class:`~repro.errors.IntegrityError`) and
  a ``repair`` resume falls back to a cold start bit-identical to the
  clean run;
* **overhead** — the clean-path cost of ``verify`` over ``off`` on a
  fault-free run, gated below 10%.

Every row records the chaos/repair event counts that prove corruption
actually fired and was absorbed.  Run::

    PYTHONPATH=src python benchmarks/bench_integrity.py \
        [--quick] [--check] [--workers N] [--out BENCH_integrity.json]

``--check`` exits non-zero when any repair run is not bit-identical, the
off-mode run fails to diverge, any corrupted checkpoint goes undetected,
too few corruptions were injected (500 full / 50 quick), or the
clean-path verify overhead reaches 10%.
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time
import warnings

import numpy as np

from repro.core.checkpoint import load_checkpoint
from repro.core.init import init_centroids
from repro.core.lloyd import lloyd
from repro.data.synthetic import gaussian_blobs
from repro.errors import IntegrityError
from repro.runtime.chaos import resolve_chaos
from repro.runtime.engine import SerialEngine, ThreadEngine

# Every map task's partial and half the shared publications are hit; the
# repair ladder must absorb all of it without touching the fixed point.
ABSORB_CHAOS = "bitflip_partial:p=1;bitflip_arena:p=0.5;seed=7"
CHECKPOINT_CHAOS = "bitflip_checkpoint:p=1;seed={seed}"


def _event_counts(result):
    counts = {}
    for event in result.host_events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def _identical(a, b):
    return (bool(np.array_equal(a.centroids, b.centroids))
            and bool(np.array_equal(a.assignments, b.assignments))
            and a.inertia == b.inertia)


def _run(X, C0, max_iter, chunk_elements, engine=None, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return lloyd(X, C0, max_iter=max_iter,
                     chunk_elements=chunk_elements, engine=engine, **kwargs)


# ---------------------------------------------------------------------------
# absorption sweep: partial + arena bitflips, serial + thread engines
# ---------------------------------------------------------------------------

def _absorption_sweep(shapes, workers, chunk_elements, max_iter):
    rows = []
    for (n, k, d, seed) in shapes:
        X, _ = gaussian_blobs(n=n, k=k, d=d, seed=seed)
        C0 = init_centroids(X, k, method="first")
        clean = _run(X, C0, max_iter, chunk_elements, SerialEngine())

        def chaotic_engine(engine_workers, integrity):
            chaos = resolve_chaos(ABSORB_CHAOS)
            if engine_workers > 1:
                return ThreadEngine(engine_workers, chaos=chaos,
                                    integrity=integrity)
            return SerialEngine(chaos=chaos, integrity=integrity)

        for engine_workers in (1, workers):
            t0 = time.perf_counter()
            repaired = _run(X, C0, max_iter, chunk_elements,
                            chaotic_engine(engine_workers, "repair"))
            repair_seconds = time.perf_counter() - t0
            counts = _event_counts(repaired)
            diverged = not _identical(
                clean, _run(X, C0, max_iter, chunk_elements,
                            chaotic_engine(engine_workers, "off")))
            rows.append({
                "n": n, "k": k, "d": d, "engine_workers": engine_workers,
                "chaos": ABSORB_CHAOS,
                "repair_identical": _identical(clean, repaired),
                "off_diverged": diverged,
                "corruptions": counts.get("chaos", 0),
                "repairs": counts.get("integrity_repair", 0),
                "quarantines": counts.get("integrity_quarantine", 0),
                "repair_seconds": repair_seconds,
            })
            r = rows[-1]
            print(f"  lloyd n={n:6d} k={k:3d} d={d:2d} "
                  f"workers={engine_workers}: "
                  f"{r['corruptions']:4d} corruptions, "
                  f"{r['repairs']:4d} repairs  "
                  f"repair {'ok' if r['repair_identical'] else 'MISMATCH'}  "
                  f"off {'diverged (good)' if diverged else 'IDENTICAL'}")
    return rows


# ---------------------------------------------------------------------------
# checkpoint sweep: every snapshot rots on disk, manifest catches it
# ---------------------------------------------------------------------------

def _checkpoint_sweep(n, k, d, max_iter, seeds, chunk_elements):
    X, _ = gaussian_blobs(n=n, k=k, d=d, seed=9)
    C0 = init_centroids(X, k, method="first")
    clean = _run(X, C0, 2 * max_iter, chunk_elements)
    rows = []
    for seed in seeds:
        with tempfile.TemporaryDirectory() as tmp:
            engine = SerialEngine(chaos=resolve_chaos(
                CHECKPOINT_CHAOS.format(seed=seed)))
            rotted = _run(X, C0, max_iter, chunk_elements, engine,
                          checkpoint_every=1, checkpoint_dir=tmp)
            corruptions = _event_counts(rotted).get("chaos", 0)
            detected = False
            try:
                load_checkpoint(tmp, integrity="verify")
            except IntegrityError:
                detected = True
            resumed = _run(X, C0, 2 * max_iter, chunk_elements,
                           checkpoint_dir=tmp, resume=True,
                           integrity="repair")
            rows.append({
                "seed": seed, "max_iter": max_iter,
                "corruptions": corruptions,  # p=1: every write rotted
                "detected": detected,
                "repair_cold_start_identical": _identical(clean, resumed),
            })
            r = rows[-1]
            print(f"  checkpoint seed={seed}: {corruptions:3d} rotted "
                  f"writes  verify "
                  f"{'detected (good)' if detected else 'SILENT'}  "
                  f"repair resume "
                  f"{'ok' if r['repair_cold_start_identical'] else 'MISMATCH'}")
    return rows


# ---------------------------------------------------------------------------
# overhead sweep: fault-free runs, off vs verify vs repair
# ---------------------------------------------------------------------------

def _overhead_sweep(n, k, d, max_iter, repeats, chunk_elements):
    # Production-shaped blocks: the absorption sweep shrinks chunks to
    # maximise injected corruptions, but the overhead gate is about the
    # clean path under a realistic block size.
    X, _ = gaussian_blobs(n=n, k=k, d=d, seed=5)
    C0 = init_centroids(X, k, method="first")
    medians = {}
    for mode in ("off", "verify", "repair"):
        _run(X, C0, max_iter, chunk_elements,
             SerialEngine(integrity=mode))  # warmup
        seconds = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            _run(X, C0, max_iter, chunk_elements,
                 SerialEngine(integrity=mode))
            seconds.append(time.perf_counter() - t0)
        medians[mode] = float(np.median(seconds))
    overhead = medians["verify"] / medians["off"] - 1.0
    print(f"  clean path n={n} k={k} d={d}: off {medians['off']:.4f}s  "
          f"verify {medians['verify']:.4f}s  repair "
          f"{medians['repair']:.4f}s  overhead {overhead * 100:+.2f}%")
    return {
        "n": n, "k": k, "d": d, "repeats": repeats,
        "median_seconds": medians,
        "verify_overhead": overhead,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="integrity harness: bitflip corruption absorbed "
                    "bit-identically, clean-path verification stays cheap")
    parser.add_argument("--quick", action="store_true",
                        help="smaller shapes (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless repair is bit-identical, off "
                             "diverges, checkpoints are detected, enough "
                             "corruptions fired, and verify overhead < 10%")
    parser.add_argument("--workers", type=int,
                        default=max(2, os.cpu_count() or 1),
                        help="thread-engine width (default: cpu count, "
                             "min 2)")
    parser.add_argument("--out", default="BENCH_integrity.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    if args.quick:
        shapes = [(2_000, 8, 6, 3)]
        overhead_shape, repeats = (20_000, 16, 8, 20), 3
        checkpoint_iters, seeds = 5, (2,)
        chunk_elements, max_iter = 2_048, 12
        floor = 50
    else:
        shapes = [(2_000, 8, 6, 3), (20_000, 16, 8, 3)]
        overhead_shape, repeats = (60_000, 16, 16, 25), 5
        checkpoint_iters, seeds = 20, (2, 3, 4)
        chunk_elements, max_iter = 4_096, 30
        floor = 500

    print(f"absorption sweep ({args.workers} workers, "
          f"cpu_count={os.cpu_count()}):")
    absorb_rows = _absorption_sweep(shapes, args.workers, chunk_elements,
                                    max_iter)
    print("checkpoint rot sweep:")
    checkpoint_rows = _checkpoint_sweep(
        2_000, 8, 6, checkpoint_iters, seeds, chunk_elements)
    print("clean-path overhead sweep:")
    overhead_row = _overhead_sweep(*overhead_shape, repeats,
                                   chunk_elements=1_000_000)

    corruptions = (sum(r["corruptions"] for r in absorb_rows)
                   + sum(r["corruptions"] for r in checkpoint_rows))
    payload = {
        "benchmark": "integrity",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "workers": args.workers,
        "total_corruptions": corruptions,
        "corruption_floor": floor,
        "absorption": absorb_rows,
        "checkpoints": checkpoint_rows,
        "overhead": overhead_row,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({corruptions} corruptions injected)")

    if args.check:
        broken = [r for r in absorb_rows if not r["repair_identical"]]
        broken += [r for r in checkpoint_rows
                   if not r["repair_cold_start_identical"]]
        if broken:
            print(f"CHECK FAILED: repair diverged in {len(broken)} row(s)")
            return 1
        tame = [r for r in absorb_rows if not r["off_diverged"]]
        if tame:
            print(f"CHECK FAILED: off-mode run stayed identical in "
                  f"{len(tame)} row(s) — corruption did not bite")
            return 1
        silent = [r for r in checkpoint_rows if not r["detected"]]
        if silent:
            print(f"CHECK FAILED: {len(silent)} corrupted checkpoint(s) "
                  f"loaded silently")
            return 1
        if corruptions < floor:
            print(f"CHECK FAILED: only {corruptions} corruptions injected "
                  f"(need >= {floor})")
            return 1
        if overhead_row["verify_overhead"] >= 0.10:
            print(f"CHECK FAILED: clean-path verify overhead "
                  f"{overhead_row['verify_overhead'] * 100:.2f}% >= 10%")
            return 1
        print("CHECK OK: corruption absorbed bit-identically, "
              "checkpoint rot detected, verify overhead under 10%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
