"""Bench: Figure 10 — land-cover classification application, end to end."""

from conftest import assert_all_checks

from repro.experiments import figure10


def test_figure10_land_cover(benchmark):
    out = benchmark(figure10.run)
    assert_all_checks(out)
    print("\n" + out.text)
