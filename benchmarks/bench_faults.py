"""Benchmarks of the fault-injection / checkpoint / recovery subsystem.

The interesting costs here are *modelled* seconds, not host seconds: how
much simulated time a checkpoint cadence buys or costs when core groups
fail mid-run, and how retry backoff shows up in the ledger.  A host-time
microbench of the injector hooks rides along to keep the zero-overhead
claim honest.

Two ways to run it:

* ``pytest benchmarks/bench_faults.py --benchmark-only`` — the usual
  pytest-benchmark microbenches below;
* ``PYTHONPATH=src python benchmarks/bench_faults.py [--quick] [--check]
  [--out BENCH_faults.json]`` — a standalone sweep: checkpoint cadence
  (none, every 1/2/5/10 iterations) against a mid-run CG failure under the
  replan policy, plus a transient-probability sweep under retry, written
  as JSON.  ``--check`` exits non-zero if the fault-free run shows any
  checkpoint/recovery charge, if a faulty replay is not bit-identical, or
  if checkpoint overhead fails to grow with cadence.
"""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointConfig, CheckpointStore
from repro.core.kmeans import HierarchicalKMeans
from repro.core.recovery import RetryPolicy
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine
from repro.runtime.faults import FaultInjector, FaultPlan, FaultSpec
from repro.runtime.ledger import TimeLedger


@pytest.fixture(scope="module")
def workload():
    X, _ = gaussian_blobs(n=5_000, k=8, d=16, seed=11)
    return X


def _model(X, faults=None, recovery="fail_fast", checkpoint_every=None,
           max_iter=25):
    return HierarchicalKMeans(
        8, machine=toy_machine(n_nodes=2), level=3, init="first",
        seed=11, max_iter=max_iter, faults=faults, recovery=recovery,
        checkpoint_every=checkpoint_every)


def test_fit_without_injector(benchmark, workload):
    result = benchmark(lambda: _model(workload).fit(workload))
    assert result.fault_events == []


def test_fit_with_idle_injector(benchmark, workload):
    # A plan whose window never opens: hooks installed, nothing fires.
    plan = FaultPlan([FaultSpec("transient_dma", iteration=10 ** 6)])
    result = benchmark(
        lambda: _model(workload, faults=plan, recovery="retry").fit(workload))
    assert result.fault_events == []


def test_fit_with_replan_recovery(benchmark, workload):
    plan = FaultPlan([FaultSpec("cg_failure", iteration=2, cg_index=1)])
    result = benchmark(
        lambda: _model(workload, faults=plan, recovery="replan",
                       checkpoint_every=1).fit(workload))
    assert [e.action for e in result.fault_events] == ["replanned"]


def test_injector_hook_overhead(benchmark):
    # A window that never opens: the hook is pure bookkeeping.
    injector = FaultInjector(
        FaultPlan([FaultSpec("transient_dma", iteration=10 ** 6)]))
    injector.begin_iteration(5)

    def hammer():
        for _ in range(1000):
            injector.on_dma("dma.transfer", 4096)

    benchmark(hammer)


def test_checkpoint_save(benchmark):
    store = CheckpointStore(CheckpointConfig(every=1), TimeLedger())
    C = np.random.default_rng(0).normal(size=(256, 64))
    it = [0]

    def save():
        it[0] += 1
        store.maybe_save(it[0], C)

    benchmark(save)
    assert store.n_saved > 0


# ---------------------------------------------------------------------------
# Standalone sweep: checkpoint cadence vs recovery overhead
# ---------------------------------------------------------------------------


def _fit(X, max_iter, faults=None, recovery="fail_fast",
         checkpoint_every=None):
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return _model(X, faults=faults, recovery=recovery,
                      checkpoint_every=checkpoint_every,
                      max_iter=max_iter).fit(X)


def _cadence_sweep(X, max_iter):
    plan = FaultPlan([FaultSpec("cg_failure", iteration=3, cg_index=1)])
    rows = []
    for every in (None, 1, 2, 5, 10):
        result = _fit(X, max_iter, faults=plan, recovery="replan",
                      checkpoint_every=every)
        replay = _fit(X, max_iter, faults=plan, recovery="replan",
                      checkpoint_every=every)
        cats = result.ledger.total_by_category()
        rows.append({
            "checkpoint_every": every,
            "n_iter": result.n_iter,
            "converged": bool(result.converged),
            "modelled_total_seconds": result.ledger.total(),
            "checkpoint_seconds": cats["checkpoint"],
            "recovery_seconds": cats["recovery"],
            "fault_actions": [e.action for e in result.fault_events],
            "replay_bit_identical": bool(
                np.array_equal(result.centroids, replay.centroids)
                and result.ledger.total() == replay.ledger.total()),
        })
        label = "none" if every is None else f"{every:4d}"
        print(f"  cadence {label}: {result.n_iter:3d} iter  "
              f"total {result.ledger.total():.6f}s  "
              f"ckpt {cats['checkpoint']:.6f}s  "
              f"recovery {cats['recovery']:.6f}s")
    return rows


def _retry_sweep(X, max_iter):
    rows = []
    for p in (0.0, 0.05, 0.2):
        faults = (FaultPlan([FaultSpec("transient_dma", probability=p)],
                            seed=5)
                  if p else None)
        result = _fit(X, max_iter, faults=faults,
                      recovery=RetryPolicy(max_retries=10 ** 6))
        cats = result.ledger.total_by_category()
        rows.append({
            "transient_probability": p,
            "n_iter": result.n_iter,
            "n_faults": len(result.fault_events),
            "modelled_total_seconds": result.ledger.total(),
            "recovery_seconds": cats["recovery"],
            "checkpoint_seconds": cats["checkpoint"],
        })
        print(f"  p={p:4.2f}: {len(result.fault_events):3d} retries  "
              f"total {result.ledger.total():.6f}s  "
              f"recovery {cats['recovery']:.6f}s")
    return rows


def main(argv=None):
    import argparse
    import json
    import platform

    parser = argparse.ArgumentParser(
        description="checkpoint-cadence vs recovery-overhead sweep")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workload (CI mode)")
    parser.add_argument("--check", action="store_true",
                        help="fail on nonzero fault-free overhead, "
                             "non-deterministic replay, or non-monotone "
                             "checkpoint cost")
    parser.add_argument("--out", default="BENCH_faults.json",
                        help="output JSON path")
    args = parser.parse_args(argv)

    n = 2_000 if args.quick else 20_000
    max_iter = 20 if args.quick else 60
    # Well-separated blobs so every sweep configuration converges and the
    # comparison is cadence-vs-overhead, not convergence luck.
    X, _ = gaussian_blobs(n=n, k=8, d=16, spread=0.02, seed=11)

    clean = _fit(X, max_iter)
    clean_cats = clean.ledger.total_by_category()
    print(f"clean run: {clean.n_iter} iter, "
          f"total {clean.ledger.total():.6f}s modelled")
    print("checkpoint cadence sweep (cg_failure@3 under replan):")
    cadence_rows = _cadence_sweep(X, max_iter)
    print("transient retry sweep:")
    retry_rows = _retry_sweep(X, max_iter)

    payload = {
        "benchmark": "faults",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "clean": {
            "n_iter": clean.n_iter,
            "modelled_total_seconds": clean.ledger.total(),
            "checkpoint_seconds": clean_cats["checkpoint"],
            "recovery_seconds": clean_cats["recovery"],
        },
        "cadence": cadence_rows,
        "retry": retry_rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        if clean_cats["checkpoint"] or clean_cats["recovery"]:
            print("CHECK FAILED: fault-free run charged checkpoint/recovery")
            return 1
        if not all(r["replay_bit_identical"] for r in cadence_rows):
            print("CHECK FAILED: faulty replay not bit-identical")
            return 1
        ckpt = {r["checkpoint_every"]: r["checkpoint_seconds"]
                for r in cadence_rows}
        if not (ckpt[None] == 0.0 and ckpt[1] >= ckpt[2] >= ckpt[10]):
            print("CHECK FAILED: checkpoint cost not monotone in cadence")
            return 1
        if not all(r["converged"] for r in cadence_rows):
            print("CHECK FAILED: a replan run failed to converge")
            return 1
        print("check ok: zero fault-free overhead, deterministic replay, "
              "monotone cadence cost")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
