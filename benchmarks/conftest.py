"""Shared fixtures for the benchmark harness.

Every paper table/figure has a bench module here.  Each module benchmarks
two things where applicable:

* the **model backend** regenerating the figure at full paper scale
  (microseconds of wall time, asserts the figure's shape checks), and
* the **execute backend** running the same partitioned algorithm for real
  at laptop scale on a toy machine (same code path, reduced n/k/d).

Run with: ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.init import init_centroids
from repro.data.synthetic import gaussian_blobs
from repro.machine.machine import toy_machine


@pytest.fixture(scope="session")
def exec_machine():
    """A toy machine with real LDM budgets for execute-backend benches."""
    return toy_machine(n_nodes=4, cgs_per_node=2, mesh=4, ldm_bytes=16 * 1024)


@pytest.fixture(scope="session")
def exec_workload():
    """A reduced-scale workload reused by execute-backend benches."""
    X, _ = gaussian_blobs(n=3000, k=24, d=32, seed=11)
    C0 = init_centroids(X, 24, method="first")
    return X, C0


def assert_all_checks(output) -> None:
    """Fail the benchmark if a paper shape check regressed."""
    failed = [name for name, ok in output.checks.items() if not ok]
    assert not failed, f"{output.exp_id} shape checks failed: {failed}"
