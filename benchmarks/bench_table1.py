"""Bench: regenerate Table I (capability envelope + feasibility proofs)."""

from conftest import assert_all_checks

from repro.experiments import table1


def test_table1_capability_envelope(benchmark):
    out = benchmark(table1.run)
    assert_all_checks(out)
    print("\n" + out.text)
