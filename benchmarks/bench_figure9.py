"""Bench: Figure 9 — Level 2 vs Level 3 over the node count."""

import numpy as np
from conftest import assert_all_checks

from repro.core.level2 import run_level2
from repro.core.level3 import run_level3
from repro.experiments import figure9
from repro.machine.machine import toy_machine


def test_figure9_model(benchmark):
    out = benchmark(figure9.run)
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure9_execute_node_sweep(benchmark):
    """Real both-level node sweep at reduced scale (modelled time falls)."""
    from repro.data.synthetic import gaussian_blobs
    # Big enough that compute/DMA dominate the fixed collective latency —
    # undersized workloads genuinely stop strong-scaling, here as on the
    # real machine.
    X, _ = gaussian_blobs(n=8000, k=32, d=96, seed=4)
    C0 = np.array(X[:32], dtype=np.float64)

    def run():
        out = {}
        for nodes in (1, 4):
            machine = toy_machine(n_nodes=nodes, cgs_per_node=2, mesh=4,
                                  ldm_bytes=16 * 1024)
            r2 = run_level2(X, C0, machine, max_iter=2)
            r3 = run_level3(X, C0, machine, max_iter=2)
            out[nodes] = (r2.mean_iteration_seconds(),
                          r3.mean_iteration_seconds())
        return out

    times = benchmark(run)
    assert times[4][0] < times[1][0]  # Level 2 scales with nodes
    assert times[4][1] < times[1][1]  # Level 3 scales with nodes
