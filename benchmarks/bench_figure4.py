"""Bench: Figure 4 — Level 2 (nk partition) on the UCI datasets."""

import numpy as np
from conftest import assert_all_checks

from repro.core.level2 import run_level2
from repro.experiments import figure4


def test_figure4_model(benchmark):
    out = benchmark(figure4.run)
    assert_all_checks(out)
    print("\n" + out.text)


def test_figure4_execute_level2(benchmark, exec_machine, exec_workload):
    """Real Level-2 iterations over a large-k range at reduced scale."""
    X, _ = exec_workload

    def run():
        results = {}
        for k in (16, 32, 64):
            C0 = np.array(X[:k], dtype=np.float64)
            r = run_level2(X, C0, exec_machine, max_iter=2)
            results[k] = r.mean_iteration_seconds()
        return results

    times = benchmark(run)
    assert times[64] > times[16]
